// Package control is ATM's trust-parameterized robust controller: it
// blends the forecast-driven resize plan with the worst-case-safe
// stingy peak-demand allocation (core.StingySizesInto — the same
// allocation the degraded path ships) under a per-box trust parameter
// λ ∈ [0, 1]. λ=1 follows the forecast plan untouched (consistency:
// when the predictor is good, ATM keeps its full ticket reduction);
// λ=0 is pure reactive peak-demand sizing (robustness: no forecast,
// however poisoned, can talk the box below what it has already
// needed). Intermediate λ takes the convex mix per VM — both endpoint
// plans respect the box capacity budget, so every mix does too.
//
// λ adapts online from observed forecast error with hysteresis: trust
// collapses immediately when the realized error explodes (a single
// catastrophic step, the ReusePolicy severe-drift signal, or a
// degraded fallback all floor it at once) and recovers slowly — at
// most RecoverStep per step, and only while the rolling error
// (score.Board's per-box window) has actually come back down. This is
// the standard consistency/robustness trade of prediction-augmented
// online algorithms ("Online Capacity Scaling Augmented With
// Unreliable Machine Learning Predictions", "Online Virtual Machine
// Allocation with Predictions"): the forecast is advice, not truth,
// and the price of following bad advice is bounded by how fast trust
// decays.
//
// The controller is sharded like the engine and the scoring board:
// Update/Blend take the box's shard, lock only that shard, and reuse
// per-box scratch, so a steady-state engine step through the
// controller stays allocation-free.
package control

import (
	"sync"

	"atm/internal/core"
	"atm/internal/obs"
	"atm/internal/trace"
)

// Controller metrics: the fleet-wide trust level and the volume of the
// two intervention paths (plans blended toward the safe allocation,
// trust floored outright). A falling atm_control_lambda is the live
// signal that forecast quality is collapsing somewhere in the fleet —
// before the ticket counters feel it.
var (
	lambdaGauge = obs.Default().Gauge("atm_control_lambda",
		"Exponentially weighted fleet-wide mean of the per-step forecast trust lambda (1 = full forecast, 0 = pure reactive).")
	blendTotal = obs.Default().Counter("atm_control_blend_total",
		"Plans blended toward the stingy safe allocation (steps with lambda < 1).")
	floorTotal = obs.Default().Counter("atm_control_floor_total",
		"Steps whose trust was floored outright (severe drift or degraded fallback).")
)

// Calibrated defaults. MAPEGood/MAPEBad bracket the rolling error of
// the synthetic substrate: a healthy seasonal forecast on the
// stationary trace sits near 0.2–0.35 rolling MAPE, while regime
// changes and poisoned windows push past 1 — so full trust is earned
// a little above the healthy band and zero trust waits for an error
// that makes the forecast genuinely worse than no forecast.
const (
	// DefaultLambda is the adaptive controller's starting trust.
	DefaultLambda = 1.0
	// DefaultMAPEGood is the rolling MAPE at or below which full trust
	// (λ=1) is earned.
	DefaultMAPEGood = 0.40
	// DefaultMAPEBad is the rolling MAPE at or above which trust is
	// zero.
	DefaultMAPEBad = 1.20
	// DefaultRecoverStep bounds how much λ may rise per step (drop is
	// unbounded — hysteresis).
	DefaultRecoverStep = 0.15
	// DefaultMinSamples is how many scored steps the rolling error
	// needs before it steers λ; until then only per-step signals
	// (StepMAPE, severe drift, degraded) move trust.
	DefaultMinSamples = 2
	// lambdaAlpha is the EWMA weight of the newest step in the fleet
	// gauge.
	lambdaAlpha = 0.05
)

// Blend reasons: why the most recent Update chose its λ. Stable
// strings, like core's decision reasons, so they survive JSON
// round-trips through the plan and event log.
const (
	// ReasonFixed: Config.Fixed pins λ (benchmark sweeps, operator
	// override).
	ReasonFixed = "fixed"
	// ReasonWarmup: not enough scored steps to judge the forecast; λ
	// holds at its current value.
	ReasonWarmup = "warmup"
	// ReasonTracking: λ follows the error-interpolated target (held or
	// dropped).
	ReasonTracking = "tracking"
	// ReasonRecovering: the target is above the current λ and trust is
	// climbing back at RecoverStep per step.
	ReasonRecovering = "recovering"
	// ReasonSevereDrift: the ReusePolicy severe-drift signal fired; λ
	// is floored.
	ReasonSevereDrift = "severe_drift"
	// ReasonDegraded: the step shipped the stingy fallback; λ is
	// floored so the steps after recovery stay conservative.
	ReasonDegraded = "degraded"
)

// Config parameterizes the controller.
type Config struct {
	// Enabled turns trust blending on. The zero Config leaves the
	// engine's plan path untouched.
	Enabled bool
	// Fixed pins λ to Lambda (no adaptation) — the benchmark sweep and
	// parity modes.
	Fixed bool
	// Lambda is the pinned trust when Fixed, and the starting trust
	// when adaptive (0 selects DefaultLambda for adaptive runs; a
	// fixed λ=0 is pure reactive and honored as given).
	Lambda float64
	// MAPEGood and MAPEBad bracket the rolling-error interpolation of
	// the λ target: at or below MAPEGood the target is 1, at or above
	// MAPEBad it is 0, linear in between. Zero selects the defaults.
	MAPEGood float64
	MAPEBad  float64
	// RecoverStep bounds the per-step λ increase (drops are immediate).
	// Zero selects DefaultRecoverStep.
	RecoverStep float64
	// LambdaFloor is the trust applied when the severe-drift signal
	// fires or a step degrades (default 0 — pure reactive).
	LambdaFloor float64
	// MinSamples is how many scored steps the rolling error needs
	// before it steers λ. Zero selects DefaultMinSamples.
	MinSamples int
}

// withDefaults fills zero fields with the calibrated defaults.
func (c Config) withDefaults() Config {
	if !c.Fixed && c.Lambda == 0 {
		c.Lambda = DefaultLambda
	}
	if c.MAPEGood == 0 {
		c.MAPEGood = DefaultMAPEGood
	}
	if c.MAPEBad <= c.MAPEGood {
		c.MAPEBad = c.MAPEGood + (DefaultMAPEBad - DefaultMAPEGood)
	}
	if c.RecoverStep == 0 {
		c.RecoverStep = DefaultRecoverStep
	}
	if c.MinSamples == 0 {
		c.MinSamples = DefaultMinSamples
	}
	c.Lambda = clamp01(c.Lambda)
	c.LambdaFloor = clamp01(c.LambdaFloor)
	return c
}

// Observation is what one engine step tells the controller: the box's
// rolling forecast error so far (score.Board, excluding this step),
// this step's own realized error, and the hard failure signals.
type Observation struct {
	// RollingMAPE is the box's rolling mean realized MAPE over its
	// last RollingN scored steps, as reported by score.Board.MAPE
	// before this step was observed.
	RollingMAPE float64
	RollingN    int
	// StepMAPE is this step's realized mean MAPE; HaveStep is false
	// for degraded steps, which carry no forecast to score.
	StepMAPE float64
	HaveStep bool
	// Degraded marks a stingy-fallback step.
	Degraded bool
	// SevereDrift is core.Pipeline.SevereDrift after this step: the
	// realized error breached twice the ReusePolicy drift bound.
	SevereDrift bool
}

// Decision is the controller's choice for the step: the trust to blend
// with and why.
type Decision struct {
	// Lambda is the trust weight of the forecast plan.
	Lambda float64 `json:"lambda"`
	// Reason is one of the Reason* constants.
	Reason string `json:"reason"`
}

// boxState is the per-box trust state plus the blend scratch buffers.
type boxState struct {
	lambda   float64
	safe     []float64 // stingy scratch, reused across resources and steps
	haveSafe bool
}

type ctlShard struct {
	mu    sync.Mutex
	boxes map[string]*boxState
}

// Controller adapts and applies per-box forecast trust. Safe for
// concurrent use across shards; calls for one box must come from one
// goroutine at a time (the engine's serialized shard pass).
type Controller struct {
	cfg    Config
	shards []ctlShard

	fleetMu   sync.Mutex
	fleetEWMA float64
	fleetInit bool
}

// New returns a controller with the given shard count (< 1 selects 1),
// mirroring the engine's shard layout. Zero config fields select the
// calibrated defaults.
func New(shards int, cfg Config) *Controller {
	if shards < 1 {
		shards = 1
	}
	c := &Controller{cfg: cfg.withDefaults(), shards: make([]ctlShard, shards)}
	for i := range c.shards {
		c.shards[i].boxes = make(map[string]*boxState)
	}
	return c
}

// Config returns the controller's configuration with defaults applied.
func (c *Controller) Config() Config { return c.cfg }

// shard maps an engine shard index onto the controller's layout.
func (c *Controller) shard(i int) *ctlShard {
	return &c.shards[((i%len(c.shards))+len(c.shards))%len(c.shards)]
}

// state fetches or creates the box's trust state. Callers hold sh.mu.
func (c *Controller) state(sh *ctlShard, id string) *boxState {
	st := sh.boxes[id]
	if st == nil {
		st = &boxState{lambda: c.cfg.Lambda}
		sh.boxes[id] = st
	}
	return st
}

// Update folds one step's observation into the box's trust and returns
// the λ to blend that step's plan with. Drops are immediate; recovery
// is bounded by RecoverStep per step and only follows the rolling
// error back up (hysteresis). Severe drift and degraded steps floor
// trust at LambdaFloor regardless of the rolling error.
func (c *Controller) Update(id string, shard int, o Observation) Decision {
	if c.cfg.Fixed {
		dec := Decision{Lambda: c.cfg.Lambda, Reason: ReasonFixed}
		c.publishLambda(dec.Lambda)
		return dec
	}
	sh := c.shard(shard)
	sh.mu.Lock()
	st := c.state(sh, id)

	target, reason := c.target(st.lambda, o)
	switch {
	case target < st.lambda:
		st.lambda = target // lose trust at once
	case target > st.lambda:
		st.lambda += c.cfg.RecoverStep // regain it slowly
		if st.lambda > target {
			st.lambda = target
		}
		reason = ReasonRecovering
	}
	dec := Decision{Lambda: st.lambda, Reason: reason}
	sh.mu.Unlock()

	if reason == ReasonSevereDrift || reason == ReasonDegraded {
		floorTotal.Inc()
	}
	c.publishLambda(dec.Lambda)
	return dec
}

// target resolves the λ the observation argues for, before hysteresis.
func (c *Controller) target(cur float64, o Observation) (float64, string) {
	switch {
	case o.Degraded:
		return c.cfg.LambdaFloor, ReasonDegraded
	case o.SevereDrift:
		return c.cfg.LambdaFloor, ReasonSevereDrift
	}
	// Judge the forecast by the worst of this step's own error and the
	// rolling window: a single catastrophic step drags trust down now,
	// while recovery has to wait for the whole window to calm down.
	worst := -1.0
	if o.HaveStep {
		worst = o.StepMAPE
	}
	if o.RollingN >= c.cfg.MinSamples && o.RollingMAPE > worst {
		worst = o.RollingMAPE
	}
	if worst < 0 {
		return cur, ReasonWarmup
	}
	t := (c.cfg.MAPEBad - worst) / (c.cfg.MAPEBad - c.cfg.MAPEGood)
	return clamp01(t), ReasonTracking
}

// publishLambda folds a step's λ into the fleet EWMA gauge.
func (c *Controller) publishLambda(l float64) {
	c.fleetMu.Lock()
	if !c.fleetInit {
		c.fleetEWMA = l
		c.fleetInit = true
	} else {
		c.fleetEWMA += lambdaAlpha * (l - c.fleetEWMA)
	}
	lambdaGauge.Set(c.fleetEWMA)
	c.fleetMu.Unlock()
}

// Lambda returns the box's current trust, reporting false when the
// controller has never seen the box. Fixed controllers report the
// pinned λ for any box.
func (c *Controller) Lambda(id string) (float64, bool) {
	if c.cfg.Fixed {
		return c.cfg.Lambda, true
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		if st, ok := sh.boxes[id]; ok {
			l := st.lambda
			sh.mu.Unlock()
			return l, true
		}
		sh.mu.Unlock()
	}
	return 0, false
}

// Blend mixes the step's forecast plan toward the stingy safe
// allocation in place: size'[v] = λ·size[v] + (1-λ)·stingy[v] for both
// resources, with TicketsAfter recounted against the realized demand
// of the evaluation horizon under the blended sizes (TicketsBefore is
// untouched — it evaluates the original capacities). wb must be the
// same windowed box the step ran on. λ ≥ 1 and degraded results are
// exact no-ops (the λ=1 path stays bit-identical to an unblended
// engine); λ ≤ 0 ships pure stingy. Returns whether the plan changed.
// Allocation-free after the box's first blend.
func (c *Controller) Blend(id string, shard int, wb *trace.Box, res *core.BoxResult, ccfg core.Config, lambda float64) bool {
	if res == nil || res.Degraded || lambda >= 1 {
		return false
	}
	if lambda < 0 {
		lambda = 0
	}
	sh := c.shard(shard)
	sh.mu.Lock()
	st := c.state(sh, id)
	blendRun(wb, res.CPU, trace.CPU, ccfg, lambda, &st.safe)
	blendRun(wb, res.RAM, trace.RAM, ccfg, lambda, &st.safe)
	sh.mu.Unlock()
	blendTotal.Inc()
	return true
}

// blendRun blends one resource's run and recounts its horizon tickets.
func blendRun(b *trace.Box, run *core.BoxRun, r trace.Resource, cfg core.Config, lambda float64, scratch *[]float64) {
	if run == nil {
		return
	}
	*scratch = core.StingySizesInto(b, r, cfg, *scratch)
	safe := *scratch
	for v := range run.Sizes {
		if v < len(safe) {
			run.Sizes[v] = lambda*run.Sizes[v] + (1-lambda)*safe[v]
		}
	}
	// Recount TicketsAfter under the blended sizes, mirroring
	// ticket.Count over the evaluation horizon (demand computed inline
	// as usage×capacity/100 — VM.Demand would allocate; NaN samples
	// never ticket, as in ticket.Count).
	run.TicketsAfter = 0
	end := cfg.TrainWindows + cfg.Horizon
	for v := range b.VMs {
		if v >= len(run.Sizes) {
			break
		}
		usage := b.VMs[v].Usage(r)
		scale := b.VMs[v].Capacity(r) / 100
		hi := end
		if hi > len(usage) {
			hi = len(usage)
		}
		limit := cfg.Threshold * run.Sizes[v]
		if run.Sizes[v] <= 0 {
			limit = 0
		}
		for j := cfg.TrainWindows; j < hi; j++ {
			if usage[j]*scale > limit {
				run.TicketsAfter++
			}
		}
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
