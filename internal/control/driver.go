package control

import (
	"fmt"
	"math"

	"atm/internal/core"
	"atm/internal/score"
	"atm/internal/trace"
)

// RollingSummary aggregates an online run through the controller. The
// ticket and MAPE fields mirror core.RollingSummary but evaluate the
// PUBLISHED (blended) plans — with the controller disabled or pinned
// at λ=1 they match core.RunRolling on the same trace bit for bit.
type RollingSummary struct {
	// Steps is the number of resizing windows executed; Researches
	// counts the ones that ran a full signature search.
	Steps      int `json:"steps"`
	Researches int `json:"researches"`
	// DegradedSteps counts stingy-fallback steps (no forecast shipped).
	DegradedSteps int `json:"degraded_steps,omitempty"`
	// BlendedSteps counts steps whose plan was actually mixed toward
	// the safe allocation (λ < 1 on a non-degraded step); FlooredSteps
	// counts the subset where trust was floored outright (severe drift
	// or degraded fallback).
	BlendedSteps int `json:"blended_steps"`
	FlooredSteps int `json:"floored_steps"`
	// MeanMAPE averages the realized forecast error over scored
	// (non-degraded) steps.
	MeanMAPE float64 `json:"mean_mape"`
	// MeanLambda averages the controller's per-step trust (1.0 when
	// the controller is disabled).
	MeanLambda float64 `json:"mean_lambda"`
	// TicketsBefore and TicketsAfter are the aggregate CPU+RAM ticket
	// counts over all evaluation horizons, under the published sizes.
	TicketsBefore int `json:"tickets_before"`
	TicketsAfter  int `json:"tickets_after"`
}

// RunRolling drives one box online through the trust-parameterized
// controller, mirroring the engine's per-step wiring exactly: pipeline
// step → controller Update (fed the scoring board's rolling error from
// BEFORE this step, this step's realized error, and the pipeline's
// severe-drift signal) → Blend → board.Observe on the published plan.
// It is the offline harness behind the robustness benchmark — the same
// decision sequence the live engine would make on the trace, without
// standing up stores and actuators.
//
// With cfg.Enabled false the controller is bypassed entirely and the
// summary matches core.RunRolling + SummarizeRolling on the same trace
// (MeanMAPE averaged over scored steps rather than poisoned to NaN by
// degraded ones).
func RunRolling(b *trace.Box, samplesPerDay int, ccfg core.Config, cfg Config) (RollingSummary, error) {
	p, err := core.NewPipeline(samplesPerDay, ccfg)
	if err != nil {
		return RollingSummary{}, err
	}
	total := 0
	if len(b.VMs) > 0 {
		total = len(b.VMs[0].CPU)
	}
	steps := (total - ccfg.TrainWindows) / ccfg.Horizon
	if steps <= 0 {
		return RollingSummary{}, fmt.Errorf("control: %d samples for train %d + horizon %d: %w",
			total, ccfg.TrainWindows, ccfg.Horizon, core.ErrShortTrace)
	}
	board := score.NewBoard(1, ccfg)
	var ctl *Controller
	if cfg.Enabled {
		ctl = New(1, cfg)
	}

	var s RollingSummary
	var mapeSum, lambdaSum float64
	scored := 0
	wb := &trace.Box{ID: b.ID, CPUCapGHz: b.CPUCapGHz, RAMCapGB: b.RAMCapGB,
		VMs: make([]trace.VM, len(b.VMs))}
	for step := 0; step < steps; step++ {
		from := step * ccfg.Horizon
		to := ccfg.TrainWindows + (step+1)*ccfg.Horizon
		for i := range b.VMs {
			vm := &b.VMs[i]
			if to > len(vm.CPU) {
				return RollingSummary{}, fmt.Errorf("control: window [%d,%d) out of range [0,%d)", from, to, len(vm.CPU))
			}
			wb.VMs[i] = trace.VM{
				ID:        vm.ID,
				CPUCapGHz: vm.CPUCapGHz,
				RAMCapGB:  vm.RAMCapGB,
				CPU:       vm.CPU.Slice(from, to),
				RAM:       vm.RAM.Slice(from, to),
			}
		}
		res, err := p.Step(wb)
		if err != nil && res == nil {
			return RollingSummary{}, fmt.Errorf("control: rolling step %d: %w", step, err)
		}

		lambda := 1.0
		if ctl != nil {
			// The rolling error the engine would see at this point: the
			// board has scored every step before this one.
			o := Observation{
				Degraded:    res.Degraded,
				SevereDrift: p.SevereDrift(),
			}
			o.RollingMAPE, o.RollingN, _ = board.MAPE(b.ID)
			if m := res.MeanMAPE(); !math.IsNaN(m) && !math.IsInf(m, 0) {
				o.StepMAPE, o.HaveStep = m, true
			}
			dec := ctl.Update(b.ID, 0, o)
			lambda = dec.Lambda
			if dec.Reason == ReasonSevereDrift || dec.Reason == ReasonDegraded {
				s.FlooredSteps++
			}
			if ctl.Blend(b.ID, 0, wb, res, ccfg, lambda) {
				s.BlendedSteps++
			}
		}
		board.Observe(b.ID, 0, res)

		s.Steps++
		if p.LastResearch() {
			s.Researches++
		}
		lambdaSum += lambda
		if res.Degraded {
			s.DegradedSteps++
		} else if m := res.MeanMAPE(); !math.IsNaN(m) && !math.IsInf(m, 0) {
			mapeSum += m
			scored++
		}
		if res.CPU != nil {
			s.TicketsBefore += res.CPU.TicketsBefore
			s.TicketsAfter += res.CPU.TicketsAfter
		}
		if res.RAM != nil {
			s.TicketsBefore += res.RAM.TicketsBefore
			s.TicketsAfter += res.RAM.TicketsAfter
		}
	}
	if scored > 0 {
		s.MeanMAPE = mapeSum / float64(scored)
	}
	if s.Steps > 0 {
		s.MeanLambda = lambdaSum / float64(s.Steps)
	}
	return s, nil
}
