// Package score keeps the online forecast scorecard: every published
// plan is compared against the realized demand of its evaluation
// horizon, per box and fleet-wide. The paper's offline accuracy tables
// (MAPE, ticket counts before/after sizing) become live metrics — a
// forecast that degrades in production shows up on the next scrape,
// not in the next batch re-run.
//
// The Board sits on the engine's step path, so Observe is allocation-
// free after a box's first step and takes only that box's shard lock.
package score

import (
	"math"
	"sync"

	"atm/internal/core"
	"atm/internal/obs"
	"atm/internal/ticket"
	"atm/internal/trace"
)

// MAPE is a fraction of actual demand, so the buckets span "excellent"
// (1%) to "unusable" (2× actual).
var mapeBuckets = []float64{0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 0.75, 1, 1.5, 2}

var (
	scoredSteps = obs.Default().Counter("atm_forecast_scored_steps_total",
		"Plan steps scored against realized demand (degraded steps excluded).")
	degradedSteps = obs.Default().Counter("atm_forecast_degraded_steps_total",
		"Degraded (stingy-fallback) steps observed by the forecast scorer; these carry no forecast to score.")
	mapeHist = obs.Default().Histogram("atm_forecast_mape",
		"Realized mean MAPE per scored step (fraction of actual demand).", mapeBuckets)
	fleetMAPE = obs.Default().Gauge("atm_forecast_mape_fleet",
		"Exponentially weighted fleet-wide mean of per-step realized MAPE (alpha 0.05).")
	ticketsPredicted = obs.Default().Counter("atm_tickets_predicted_total",
		"Tickets the published plans predicted over their evaluation horizons (forecast demand vs plan sizes).")
	ticketsRealized = obs.Default().Counter("atm_tickets_realized_total",
		"Tickets realized demand issued over the same horizons under the plan sizes.")
	overUnits = obs.Default().Counter("atm_forecast_overprovision_units_total",
		"Capacity units (GHz+GB) allocated above realized demand, averaged per horizon window and summed over scored steps.")
	underUnits = obs.Default().Counter("atm_forecast_underprovision_units_total",
		"Capacity units (GHz+GB) of realized demand above the allocation, averaged per horizon window and summed over scored steps.")
)

// RollingWindow is how many recent scored steps the per-box rolling
// MAPE averages over.
const RollingWindow = 16

// fleetAlpha is the EWMA weight of the newest step in the fleet gauge.
const fleetAlpha = 0.05

// Card is one box's forecast scorecard: how the published plans have
// been tracking reality. All ticket and unit fields are cumulative
// since the box first appeared; Last* fields are from the most recent
// scored step. MAPE fields are omitted (zero) until a non-degraded
// step scores.
type Card struct {
	Box   string `json:"box"`
	Shard int    `json:"shard"`
	// Steps counts scored (non-degraded) steps; DegradedSteps counts
	// stingy-fallback steps that carried no forecast.
	Steps         int `json:"steps"`
	DegradedSteps int `json:"degraded_steps,omitempty"`
	// LastMAPE is the most recent step's realized mean MAPE;
	// RollingMAPE averages the last RollingN scored steps
	// (RollingN ≤ RollingWindow).
	LastMAPE    float64 `json:"last_mape"`
	RollingMAPE float64 `json:"rolling_mape"`
	RollingN    int     `json:"rolling_n"`
	// TicketsPredicted/TicketsRealized are cumulative CPU+RAM ticket
	// counts over the evaluation horizons, under the plan's sizes.
	TicketsPredicted int `json:"tickets_predicted"`
	TicketsRealized  int `json:"tickets_realized"`
	// Over/under-provision magnitude: capacity units (GHz+GB) between
	// allocation and realized demand, averaged per horizon window.
	LastOverUnits  float64 `json:"last_over_units"`
	LastUnderUnits float64 `json:"last_under_units"`
	OverUnits      float64 `json:"over_units_total"`
	UnderUnits     float64 `json:"under_units_total"`
}

// card is the mutable per-box state behind a Card: the public snapshot
// plus the rolling-MAPE ring.
type card struct {
	Card
	ring [RollingWindow]float64
	idx  int
	fill int
	sum  float64
}

type boardShard struct {
	mu    sync.Mutex
	boxes map[string]*card
}

// Board scores every engine step against realized demand, sharded the
// same way as the engine so concurrent shard passes never contend on
// one lock. Safe for concurrent use.
type Board struct {
	cfg    core.Config
	shards []boardShard

	fleetMu   sync.Mutex
	fleetEWMA float64
	fleetInit bool
}

// NewBoard returns a scoring board with the given shard count
// (< 1 selects 1). cfg supplies the ticket threshold and window split
// used to evaluate plans.
func NewBoard(shards int, cfg core.Config) *Board {
	if shards < 1 {
		shards = 1
	}
	b := &Board{cfg: cfg, shards: make([]boardShard, shards)}
	for i := range b.shards {
		b.shards[i].boxes = make(map[string]*card)
	}
	return b
}

// Observe scores one step result for a box on the given shard. It is
// allocation-free after the box's first observation and must be called
// from at most one goroutine per shard (the engine's shard pass), with
// concurrent calls across shards fine.
func (b *Board) Observe(id string, shard int, res *core.BoxResult) {
	if res == nil {
		return
	}
	sh := &b.shards[((shard%len(b.shards))+len(b.shards))%len(b.shards)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c := sh.boxes[id]
	if c == nil {
		c = &card{}
		c.Box = id
		c.Shard = shard
		sh.boxes[id] = c
	}

	realized := 0
	if res.CPU != nil {
		realized += res.CPU.TicketsAfter
	}
	if res.RAM != nil {
		realized += res.RAM.TicketsAfter
	}
	c.TicketsRealized += realized
	ticketsRealized.Add(float64(realized))

	if res.Degraded || res.Prediction == nil {
		c.DegradedSteps++
		degradedSteps.Inc()
		return
	}

	m := res.MeanMAPE()
	if !math.IsNaN(m) && !math.IsInf(m, 0) {
		c.LastMAPE = m
		if c.fill == RollingWindow {
			c.sum -= c.ring[c.idx]
		} else {
			c.fill++
		}
		c.ring[c.idx] = m
		c.idx = (c.idx + 1) % RollingWindow
		c.sum += m
		c.RollingMAPE = c.sum / float64(c.fill)
		c.RollingN = c.fill
		mapeHist.Observe(m)

		b.fleetMu.Lock()
		if !b.fleetInit {
			b.fleetEWMA = m
			b.fleetInit = true
		} else {
			b.fleetEWMA += fleetAlpha * (m - b.fleetEWMA)
		}
		fleetMAPE.Set(b.fleetEWMA)
		b.fleetMu.Unlock()
	}

	c.Steps++
	scoredSteps.Inc()
	b.scoreSizing(c, res)
}

// scoreSizing compares the plan's sizes against forecast and realized
// demand over the evaluation horizon: predicted ticket count, and the
// average per-window over/under-provision magnitude in capacity units.
func (b *Board) scoreSizing(c *card, res *core.BoxResult) {
	box := res.Box
	if box == nil {
		return
	}
	train, horizon := b.cfg.TrainWindows, b.cfg.Horizon
	predicted := 0
	var over, under float64
	windows := 0
	for vm := range box.VMs {
		v := &box.VMs[vm]
		for r := trace.CPU; r <= trace.RAM; r++ {
			run := res.CPU
			if r == trace.RAM {
				run = res.RAM
			}
			if run == nil || vm >= len(run.Sizes) {
				continue
			}
			size := run.Sizes[vm]
			// Predicted tickets: forecast demand vs the plan's size.
			i := trace.SeriesIndex(vm, r)
			if i < len(res.Prediction.Demand) {
				predicted += ticket.Count(res.Prediction.Demand[i], size, b.cfg.Threshold)
			}
			// Realized provisioning gap: usage percent × allocated
			// capacity is the demand (computed inline — vm.Demand
			// allocates a scaled copy).
			usage := v.Usage(r)
			cap := v.Capacity(r)
			end := train + horizon
			if end > len(usage) {
				end = len(usage)
			}
			for j := train; j < end; j++ {
				d := usage[j] * cap / 100
				if math.IsNaN(d) {
					continue
				}
				if size > d {
					over += size - d
				} else {
					under += d - size
				}
				windows++
			}
		}
	}
	if horizon > 0 && windows > 0 {
		over /= float64(horizon)
		under /= float64(horizon)
	}
	c.TicketsPredicted += predicted
	c.LastOverUnits = over
	c.LastUnderUnits = under
	c.OverUnits += over
	c.UnderUnits += under
	ticketsPredicted.Add(float64(predicted))
	overUnits.Add(over)
	underUnits.Add(under)
}

// MAPE returns the box's rolling forecast error — the mean realized
// MAPE over its last n scored steps (n ≤ RollingWindow) — reporting
// ok=false when the box has never been observed or has no scored
// (non-degraded) step yet. Unlike Snapshot it copies no Card, so the
// call is allocation-free: it sits on the engine's step path, where
// the trust-blending controller reads it every step.
func (b *Board) MAPE(id string) (mape float64, n int, ok bool) {
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.Lock()
		if c, found := sh.boxes[id]; found {
			mape, n = c.RollingMAPE, c.RollingN
			sh.mu.Unlock()
			return mape, n, n > 0
		}
		sh.mu.Unlock()
	}
	return 0, 0, false
}

// Snapshot returns a copy of the box's scorecard, reporting false when
// the box has never been observed.
func (b *Board) Snapshot(id string) (Card, bool) {
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.Lock()
		if c, ok := sh.boxes[id]; ok {
			out := c.Card
			sh.mu.Unlock()
			return out, true
		}
		sh.mu.Unlock()
	}
	return Card{}, false
}

// Boxes returns how many boxes the board has scored at least once.
func (b *Board) Boxes() int {
	n := 0
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.Lock()
		n += len(sh.boxes)
		sh.mu.Unlock()
	}
	return n
}
