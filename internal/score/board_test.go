package score

import (
	"math"
	"testing"

	"atm/internal/core"
	"atm/internal/predict"
	"atm/internal/spatial"
	"atm/internal/timeseries"
	"atm/internal/trace"
)

func scoreConfig() core.Config {
	return core.Config{
		Spatial:      spatial.Config{Method: spatial.MethodCBC},
		Temporal:     func() predict.Model { return &predict.SeasonalNaive{Period: 4} },
		TrainWindows: 8,
		Horizon:      4,
		Threshold:    0.6,
		Epsilon:      0.1,
		Degraded:     true,
	}
}

// synthBox builds a 1-VM box whose usage sits at the given percent for
// train+horizon windows.
func synthBox(usagePct float64) *trace.Box {
	cfg := scoreConfig()
	n := cfg.TrainWindows + cfg.Horizon
	u := make(timeseries.Series, n)
	for i := range u {
		u[i] = usagePct
	}
	return &trace.Box{
		ID: "box-1", CPUCapGHz: 10, RAMCapGB: 10,
		VMs: []trace.VM{{ID: "vm-0", CPUCapGHz: 4, RAMCapGB: 4, CPU: u, RAM: append(timeseries.Series(nil), u...)}},
	}
}

func synthResult(b *trace.Box, mape float64) *core.BoxResult {
	cfg := scoreConfig()
	demand := make([]timeseries.Series, len(b.VMs)*trace.NumResources)
	for i := range demand {
		fc := make(timeseries.Series, cfg.Horizon)
		for j := range fc {
			fc[j] = 1.0 // 25% of the 4-unit VM: predicts zero tickets at size 4
		}
		demand[i] = fc
	}
	return &core.BoxResult{
		Box:        b,
		Prediction: &core.BoxPrediction{Demand: demand, MAPE: []float64{mape, mape}},
		CPU:        &core.BoxRun{Resource: trace.CPU, Sizes: []float64{4}, TicketsBefore: 3, TicketsAfter: 1},
		RAM:        &core.BoxRun{Resource: trace.RAM, Sizes: []float64{4}, TicketsBefore: 2, TicketsAfter: 0},
	}
}

func TestBoardObserveScoresStep(t *testing.T) {
	b := NewBoard(4, scoreConfig())
	box := synthBox(25) // demand = 1.0 units on a 4-unit VM
	b.Observe("box-1", 2, synthResult(box, 0.10))
	b.Observe("box-1", 2, synthResult(box, 0.20))

	card, ok := b.Snapshot("box-1")
	if !ok {
		t.Fatal("no scorecard for observed box")
	}
	if card.Steps != 2 || card.DegradedSteps != 0 {
		t.Fatalf("steps = %d/%d, want 2/0", card.Steps, card.DegradedSteps)
	}
	if card.Shard != 2 {
		t.Fatalf("shard = %d, want 2", card.Shard)
	}
	if card.LastMAPE != 0.20 {
		t.Fatalf("last MAPE = %v, want 0.20", card.LastMAPE)
	}
	if math.Abs(card.RollingMAPE-0.15) > 1e-12 || card.RollingN != 2 {
		t.Fatalf("rolling MAPE = %v over %d, want 0.15 over 2", card.RollingMAPE, card.RollingN)
	}
	// Realized tickets: (1+0) per step, two steps.
	if card.TicketsRealized != 2 {
		t.Fatalf("realized tickets = %d, want 2", card.TicketsRealized)
	}
	// Predicted demand 1.0 vs limit 0.6*4=2.4: zero predicted tickets.
	if card.TicketsPredicted != 0 {
		t.Fatalf("predicted tickets = %d, want 0", card.TicketsPredicted)
	}
	// Realized demand 1.0 vs size 4 on both resources: over = 3 units
	// per window per resource = 6 per window; averaged over the horizon
	// that is 6 per step.
	if math.Abs(card.LastOverUnits-6) > 1e-9 {
		t.Fatalf("last over-provision = %v, want 6", card.LastOverUnits)
	}
	if card.LastUnderUnits != 0 {
		t.Fatalf("last under-provision = %v, want 0", card.LastUnderUnits)
	}
	if math.Abs(card.OverUnits-12) > 1e-9 {
		t.Fatalf("cumulative over-provision = %v, want 12", card.OverUnits)
	}
}

func TestBoardDegradedStepsDoNotScore(t *testing.T) {
	b := NewBoard(1, scoreConfig())
	box := synthBox(25)
	b.Observe("box-1", 0, &core.BoxResult{
		Box:      box,
		Degraded: true,
		CPU:      &core.BoxRun{Sizes: []float64{4}, TicketsAfter: 5},
		RAM:      &core.BoxRun{Sizes: []float64{4}, TicketsAfter: 2},
	})
	card, ok := b.Snapshot("box-1")
	if !ok {
		t.Fatal("no scorecard")
	}
	if card.Steps != 0 || card.DegradedSteps != 1 {
		t.Fatalf("steps = %d/%d, want 0 scored / 1 degraded", card.Steps, card.DegradedSteps)
	}
	// Realized tickets still count — the fallback plan is live.
	if card.TicketsRealized != 7 {
		t.Fatalf("realized tickets = %d, want 7", card.TicketsRealized)
	}
	if card.RollingN != 0 || card.LastMAPE != 0 {
		t.Fatalf("degraded step leaked MAPE: %+v", card)
	}
}

func TestBoardUnderProvision(t *testing.T) {
	b := NewBoard(1, scoreConfig())
	box := synthBox(100) // demand = 4.0 units
	res := synthResult(box, 0.1)
	res.CPU.Sizes = []float64{3} // 1 unit short on CPU
	b.Observe("box-1", 0, res)
	card, _ := b.Snapshot("box-1")
	// CPU: demand 4 vs size 3 → under 1/window; RAM: demand 4 vs size 4
	// → exactly met. Averaged over the horizon: 1 unit under.
	if math.Abs(card.LastUnderUnits-1) > 1e-9 {
		t.Fatalf("under-provision = %v, want 1", card.LastUnderUnits)
	}
	if card.LastOverUnits != 0 {
		t.Fatalf("over-provision = %v, want 0", card.LastOverUnits)
	}
}

func TestBoardSnapshotUnknownBox(t *testing.T) {
	b := NewBoard(2, scoreConfig())
	if _, ok := b.Snapshot("ghost"); ok {
		t.Fatal("snapshot of never-observed box reported ok")
	}
	if b.Boxes() != 0 {
		t.Fatalf("Boxes = %d, want 0", b.Boxes())
	}
}

func TestBoardObserveAllocFree(t *testing.T) {
	b := NewBoard(1, scoreConfig())
	box := synthBox(50)
	res := synthResult(box, 0.1)
	b.Observe("box-1", 0, res) // warm-up: creates the card
	allocs := testing.AllocsPerRun(100, func() {
		b.Observe("box-1", 0, res)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Observe allocates %.1f objects/op, want 0", allocs)
	}
}
