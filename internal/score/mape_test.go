package score

import (
	"math"
	"testing"

	"atm/internal/core"
	"atm/internal/trace"
)

// degradedOnly builds a stingy-fallback result: realized tickets but no
// forecast to score.
func degradedOnly(box *trace.Box) *core.BoxResult {
	return &core.BoxResult{
		Box:      box,
		Degraded: true,
		CPU:      &core.BoxRun{Sizes: []float64{4}, TicketsAfter: 1},
		RAM:      &core.BoxRun{Sizes: []float64{4}},
	}
}

func TestBoardMAPEAccessor(t *testing.T) {
	b := NewBoard(4, scoreConfig())
	box := synthBox(25)

	if _, _, ok := b.MAPE("box-1"); ok {
		t.Fatal("MAPE of never-observed box reported ok")
	}

	// A degraded-only box exists on the board but carries no forecast
	// to score — the accessor must not report a usable error for it.
	b.Observe("box-1", 2, degradedOnly(box))
	if _, n, ok := b.MAPE("box-1"); ok || n != 0 {
		t.Fatalf("MAPE after degraded-only step = (n=%d, ok=%v), want (0, false)", n, ok)
	}

	b.Observe("box-1", 2, synthResult(box, 0.10))
	b.Observe("box-1", 2, synthResult(box, 0.30))
	m, n, ok := b.MAPE("box-1")
	if !ok || n != 2 {
		t.Fatalf("MAPE = (n=%d, ok=%v), want (2, true)", n, ok)
	}
	if math.Abs(m-0.20) > 1e-12 {
		t.Fatalf("rolling MAPE = %v, want 0.20", m)
	}

	// The accessor must agree with the full Snapshot.
	card, _ := b.Snapshot("box-1")
	if m != card.RollingMAPE || n != card.RollingN {
		t.Fatalf("MAPE (%v, %d) disagrees with Snapshot (%v, %d)",
			m, n, card.RollingMAPE, card.RollingN)
	}
}

// TestBoardMAPEAllocFree is the allocgate companion of
// TestBoardObserveAllocFree: the accessor sits on the engine's step
// path next to Observe and must not allocate either.
func TestBoardMAPEAllocFree(t *testing.T) {
	b := NewBoard(2, scoreConfig())
	box := synthBox(50)
	b.Observe("box-1", 1, synthResult(box, 0.1))
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, ok := b.MAPE("box-1"); !ok {
			t.Fatal("MAPE lost the box")
		}
	})
	if allocs != 0 {
		t.Fatalf("Board.MAPE allocates %.1f objects/op, want 0", allocs)
	}
}
