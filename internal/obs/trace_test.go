package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestSpanNesting checks parent/child wiring: children share the
// root's trace id and point at their parent's span id, and siblings
// started from the same context level share a parent.
func TestSpanNesting(t *testing.T) {
	ring := NewRingExporter(16)
	tracer := NewTracer(ring)
	ctx := WithTracer(context.Background(), tracer)

	rctx, root := StartSpan(ctx, "root")
	cctx, child := StartSpan(rctx, "child")
	_, grand := StartSpan(cctx, "grandchild")
	time.Sleep(time.Millisecond)
	grand.End()
	child.End()
	_, sibling := StartSpan(rctx, "sibling")
	sibling.End()
	root.End()

	spans := ring.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	byName := map[string]SpanData{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	rootS := byName["root"]
	if rootS.ParentID != "" {
		t.Errorf("root has parent %q", rootS.ParentID)
	}
	for _, name := range []string{"child", "sibling", "grandchild"} {
		if byName[name].TraceID != rootS.TraceID {
			t.Errorf("%s trace id %q, want root's %q", name, byName[name].TraceID, rootS.TraceID)
		}
	}
	if byName["child"].ParentID != rootS.SpanID {
		t.Errorf("child parent = %q, want %q", byName["child"].ParentID, rootS.SpanID)
	}
	if byName["sibling"].ParentID != rootS.SpanID {
		t.Errorf("sibling parent = %q, want %q", byName["sibling"].ParentID, rootS.SpanID)
	}
	if byName["grandchild"].ParentID != byName["child"].SpanID {
		t.Errorf("grandchild parent = %q, want child %q", byName["grandchild"].ParentID, byName["child"].SpanID)
	}
	if byName["grandchild"].DurationNS <= 0 {
		t.Error("grandchild has zero duration")
	}
	// Export order is end order: leaves first.
	if spans[0].Name != "grandchild" || spans[3].Name != "root" {
		t.Errorf("export order = %v", []string{spans[0].Name, spans[1].Name, spans[2].Name, spans[3].Name})
	}
}

// TestSpanNoTracer checks the disabled path: no tracer in context
// yields a nil span whose methods are all no-ops.
func TestSpanNoTracer(t *testing.T) {
	ctx, span := StartSpan(context.Background(), "orphan")
	if span != nil {
		t.Fatal("expected nil span without a tracer")
	}
	span.SetAttr("k", "v") // must not panic
	span.End()
	if SpanFrom(ctx) != nil {
		t.Error("context gained a span without a tracer")
	}
}

// TestSpanAttrsAndDoubleEnd checks attribute capture and that End is
// idempotent.
func TestSpanAttrsAndDoubleEnd(t *testing.T) {
	ring := NewRingExporter(4)
	tracer := NewTracer(ring)
	ctx := WithTracer(context.Background(), tracer)
	_, s := StartSpan(ctx, "op")
	s.SetAttr("box", "box-7")
	s.SetAttr("vms", 12)
	s.End()
	s.End()
	s.SetAttr("late", true) // after End: dropped
	spans := ring.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	box, _ := spans[0].Attrs.Get("box")
	vms, _ := spans[0].Attrs.Get("vms")
	if box != "box-7" || vms != 12 {
		t.Errorf("attrs = %v", spans[0].Attrs)
	}
	if _, ok := spans[0].Attrs.Get("late"); ok {
		t.Error("attr set after End leaked into export")
	}
}

// TestRingExporterWrap checks the ring keeps only the most recent
// spans, oldest first.
func TestRingExporterWrap(t *testing.T) {
	ring := NewRingExporter(2)
	for _, n := range []string{"a", "b", "c"} {
		ring.ExportSpan(SpanData{Name: n})
	}
	spans := ring.Spans()
	if len(spans) != 2 || spans[0].Name != "b" || spans[1].Name != "c" {
		t.Errorf("ring = %v", spans)
	}
	if ring.Total() != 3 {
		t.Errorf("total = %d, want 3", ring.Total())
	}
}

// TestJSONLExporter checks every finished span becomes one valid JSON
// line that decodes back to the span data.
func TestJSONLExporter(t *testing.T) {
	var sb strings.Builder
	exp := NewJSONLExporter(&sb)
	tracer := NewTracer(exp)
	ctx := WithTracer(context.Background(), tracer)
	rctx, root := StartSpan(ctx, "resize")
	_, child := StartSpan(rctx, "greedy")
	child.End()
	root.End()
	if err := exp.Err(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	var lines []SpanData
	for sc.Scan() {
		var s SpanData
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("bad JSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, s)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if lines[0].Name != "greedy" || lines[1].Name != "resize" {
		t.Errorf("names = %v, %v", lines[0].Name, lines[1].Name)
	}
	if lines[0].ParentID != lines[1].SpanID {
		t.Error("JSONL parent/child ids do not reassemble")
	}
}
