package obs

import (
	"runtime"
	"sync"
)

// RegisterRuntimeMetrics adds Go runtime self-metrics to the registry,
// sampled on every scrape via an OnScrape hook — no background
// goroutine, no /proc parsing, so it works identically in the daemon,
// tests and the in-process load harness:
//
//	atm_go_goroutines             live goroutine count
//	atm_go_heap_inuse_bytes       bytes in in-use heap spans
//	atm_go_heap_sys_bytes         heap bytes obtained from the OS
//	atm_go_gc_runs_total          completed GC cycles
//	atm_go_gc_pause_seconds_total cumulative stop-the-world pause time
//
// The control-plane health row next to the domain metrics: a heap
// ramp or a GC-pause spike during an ingest burst shows up on the same
// dashboard as the forecast scores it would degrade. Call once per
// registry (a second call would double-count the GC deltas); for the
// Default registry use EnableRuntimeMetrics, which is idempotent.
func RegisterRuntimeMetrics(r *Registry) {
	goroutines := r.Gauge("atm_go_goroutines",
		"Live goroutines in the process.")
	heapInuse := r.Gauge("atm_go_heap_inuse_bytes",
		"Bytes in in-use heap spans (runtime.MemStats.HeapInuse).")
	heapSys := r.Gauge("atm_go_heap_sys_bytes",
		"Heap bytes obtained from the OS (runtime.MemStats.HeapSys).")
	gcRuns := r.Counter("atm_go_gc_runs_total",
		"Completed garbage-collection cycles.")
	gcPause := r.Counter("atm_go_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause time in seconds.")

	var (
		mu        sync.Mutex
		lastGC    uint32
		lastPause uint64
	)
	r.OnScrape(func() {
		goroutines.Set(float64(runtime.NumGoroutine()))
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heapInuse.Set(float64(ms.HeapInuse))
		heapSys.Set(float64(ms.HeapSys))
		// Counters can only Add; feed them the deltas since the last
		// scrape (concurrent scrapes serialize on mu so no delta is
		// double-counted).
		mu.Lock()
		gcRuns.Add(float64(ms.NumGC - lastGC))
		gcPause.Add(float64(ms.PauseTotalNs-lastPause) / 1e9)
		lastGC, lastPause = ms.NumGC, ms.PauseTotalNs
		mu.Unlock()
	})
}

var runtimeMetricsOnce sync.Once

// EnableRuntimeMetrics registers the Go runtime self-metrics on the
// Default registry, exactly once no matter how often it is called.
func EnableRuntimeMetrics() {
	runtimeMetricsOnce.Do(func() { RegisterRuntimeMetrics(defaultRegistry) })
}
