// Package obs is ATM's zero-dependency observability layer: a
// concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms) exposed in the Prometheus text format, a lightweight
// hierarchical tracer with pluggable exporters, and HTTP middleware
// for the actuation daemon. The paper operates its controller with
// ad-hoc logging; a production deployment resizing live VMs every
// prediction window needs first-class visibility into prediction
// latency, resize decisions and actuation failures, which is what this
// package provides to every other layer.
//
// All instrumented packages register their metrics against the
// process-wide Default registry at init; scraping `/metrics` on atmd
// (or mounting Handler anywhere) therefore sees the whole pipeline —
// DTW pruning ratios, VIF eliminations, greedy heap pops, worker-pool
// latency, ticket counts — without any wiring.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency buckets in seconds, spanning the
// microsecond-scale inner kernels (one DTW pair) through second-scale
// whole-pipeline stages (a full-box predict + resize).
var DefBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// metricType discriminates the registered metric families.
type metricType int

const (
	counterType metricType = iota
	gaugeType
	histogramType
)

func (t metricType) String() string {
	switch t {
	case counterType:
		return "counter"
	case gaugeType:
		return "gauge"
	case histogramType:
		return "histogram"
	default:
		return fmt.Sprintf("metricType(%d)", int(t))
	}
}

// atomicFloat is a float64 with atomic add/load/store, the shared
// storage cell of counters and gauges.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(d float64) {
	for {
		old := f.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + d)
		if f.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing metric.
type Counter struct {
	val atomicFloat
}

// Inc adds one.
func (c *Counter) Inc() { c.val.Add(1) }

// Add adds d, which must be non-negative (negative deltas are a
// programmer error; they are silently dropped to keep counters
// monotone rather than panicking on a hot path).
func (c *Counter) Add(d float64) {
	if d < 0 {
		return
	}
	c.val.Add(d)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.val.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	val atomicFloat
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.val.Store(v) }

// Add adds d (negative to decrease).
func (g *Gauge) Add(d float64) { g.val.Add(d) }

// Inc adds one.
func (g *Gauge) Inc() { g.val.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.val.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.val.Load() }

// Histogram accumulates observations into a fixed cumulative bucket
// layout (Prometheus histogram semantics: bucket upper bounds are
// inclusive, an implicit +Inf bucket catches everything).
type Histogram struct {
	upper  []float64 // sorted upper bounds, exclusive of +Inf
	counts []atomic.Uint64
	sum    atomicFloat
	total  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Buckets are few (tens); the linear scan beats binary search at
	// this size and is branch-predictor friendly for clustered values.
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// child is the union of the three metric kinds inside a family.
type child struct {
	labels []string // label values, in family label-name order
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is one registered metric name: its metadata plus the children
// keyed by label values.
type family struct {
	name    string
	help    string
	typ     metricType
	labels  []string
	buckets []float64 // histogramType only

	mu       sync.Mutex
	children map[string]*child
}

// labelKey joins label values with an unprintable separator.
func labelKey(values []string) string { return strings.Join(values, "\x1f") }

func (f *family) child(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s has labels %v, got %d values", f.name, f.labels, len(values)))
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch, ok := f.children[key]; ok {
		return ch
	}
	ch := &child{labels: append([]string(nil), values...)}
	switch f.typ {
	case counterType:
		ch.c = &Counter{}
	case gaugeType:
		ch.g = &Gauge{}
	case histogramType:
		ch.h = &Histogram{
			upper:  f.buckets,
			counts: make([]atomic.Uint64, len(f.buckets)+1),
		}
	}
	f.children[key] = ch
	return ch
}

// Registry is a concurrency-safe collection of metric families. The
// zero value is not usable; call NewRegistry (or use Default).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family

	hookMu sync.Mutex
	hooks  []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// defaultRegistry is the process-wide registry instrumented packages
// register against at init.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// family registers (or fetches, idempotently) a metric family.
// Re-registering an existing name with a different type or label set
// panics: two packages claiming one metric name with incompatible
// shapes is a programmer error that would silently corrupt exposition.
func (r *Registry) family(name, help string, typ metricType, buckets []float64, labels []string) *family {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("obs: metric %s re-registered as %v, was %v", name, typ, f.typ))
		}
		if len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered with labels %v, was %v", name, labels, f.labels))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %s re-registered with labels %v, was %v", name, labels, f.labels))
			}
		}
		return f
	}
	if typ == histogramType {
		if len(buckets) == 0 {
			buckets = DefBuckets
		}
		if !sort.Float64sAreSorted(buckets) {
			panic(fmt.Sprintf("obs: metric %s has unsorted buckets", name))
		}
	}
	f := &family{
		name:     name,
		help:     help,
		typ:      typ,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, counterType, nil, nil).child(nil).c
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, gaugeType, nil, nil).child(nil).g
}

// Histogram registers (or fetches) an unlabeled histogram with the
// given bucket upper bounds (nil selects DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.family(name, help, histogramType, buckets, nil).child(nil).h
}

// CounterVec is a family of counters partitioned by label values.
type CounterVec struct{ fam *family }

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.family(name, help, counterType, nil, labels)}
}

// With returns the child counter for the label values, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter { return v.fam.child(values).c }

// GaugeVec is a family of gauges partitioned by label values.
type GaugeVec struct{ fam *family }

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.family(name, help, gaugeType, nil, labels)}
}

// With returns the child gauge for the label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.fam.child(values).g }

// HistogramVec is a family of histograms partitioned by label values.
type HistogramVec struct{ fam *family }

// HistogramVec registers (or fetches) a labeled histogram family with
// the given buckets (nil selects DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{fam: r.family(name, help, histogramType, buckets, labels)}
}

// With returns the child histogram for the label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.fam.child(values).h }

// formatValue renders a sample value the way the Prometheus text
// format expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// escapeHelp escapes a HELP line.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// labelString renders {k="v",...} for names+values, with extra
// appended verbatim (used for the le label). Empty input renders
// nothing.
func labelString(names, values []string, extra string) string {
	if len(names) == 0 && extra == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	if extra != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extra)
	}
	sb.WriteByte('}')
	return sb.String()
}

// OnScrape registers a hook invoked at the start of every
// WritePrometheus call, before any family is read — the pull-model
// bridge for gauges whose source is sampled on demand (Go runtime
// stats) rather than pushed on events. Hooks must be fast and must not
// call WritePrometheus.
func (r *Registry) OnScrape(f func()) {
	r.hookMu.Lock()
	defer r.hookMu.Unlock()
	r.hooks = append(r.hooks, f)
}

// WritePrometheus writes the registry contents in the Prometheus text
// exposition format (version 0.0.4). Families and children are sorted
// by name and label values, so the output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.hookMu.Lock()
	hooks := append([]func(){}, r.hooks...)
	r.hookMu.Unlock()
	for _, f := range hooks {
		f()
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make(map[string]*family, len(r.families))
	for n, f := range r.families {
		names = append(names, n)
		fams[n] = f
	}
	r.mu.Unlock()
	sort.Strings(names)

	var sb strings.Builder
	for _, n := range names {
		f := fams[n]
		f.mu.Lock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		children := make([]*child, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.Unlock()
		if len(children) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.typ)
		for _, ch := range children {
			switch f.typ {
			case counterType:
				fmt.Fprintf(&sb, "%s%s %s\n", f.name, labelString(f.labels, ch.labels, ""), formatValue(ch.c.Value()))
			case gaugeType:
				fmt.Fprintf(&sb, "%s%s %s\n", f.name, labelString(f.labels, ch.labels, ""), formatValue(ch.g.Value()))
			case histogramType:
				h := ch.h
				var cum uint64
				for i, ub := range h.upper {
					cum += h.counts[i].Load()
					le := `le="` + formatValue(ub) + `"`
					fmt.Fprintf(&sb, "%s_bucket%s %d\n", f.name, labelString(f.labels, ch.labels, le), cum)
				}
				cum += h.counts[len(h.upper)].Load()
				fmt.Fprintf(&sb, "%s_bucket%s %d\n", f.name, labelString(f.labels, ch.labels, `le="+Inf"`), cum)
				fmt.Fprintf(&sb, "%s_sum%s %s\n", f.name, labelString(f.labels, ch.labels, ""), formatValue(h.Sum()))
				fmt.Fprintf(&sb, "%s_count%s %d\n", f.name, labelString(f.labels, ch.labels, ""), h.Count())
			}
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Handler serves the registry in the Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			// Headers are already out; nothing more to do.
			return
		}
	})
}

// Handler serves the Default registry in the Prometheus text format —
// the `/metrics` endpoint of atmd and anything else that mounts it.
func Handler() http.Handler { return defaultRegistry.Handler() }

// Since returns the elapsed seconds since start — the unit every
// latency histogram in this package uses.
func Since(start time.Time) float64 { return time.Since(start).Seconds() }
