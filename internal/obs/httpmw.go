package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// statusWriter captures the response status code for the middleware.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	return w.ResponseWriter.Write(b)
}

// Flush passes through to the underlying writer when it supports
// streaming (pprof's trace endpoint flushes).
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// statusClass buckets a status code into "2xx".."5xx".
func statusClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return fmt.Sprintf("%dxx", code/100)
}

// InstrumentHandler wraps h with per-route HTTP metrics on the
// registry: request count by method and status class, a latency
// histogram, and an in-flight gauge. route is the metric label, not a
// pattern — pass the normalized form (e.g. "/cgroups/:id") so
// unbounded path cardinality never reaches the registry.
func (r *Registry) InstrumentHandler(route string, h http.Handler) http.Handler {
	requests := r.CounterVec("atm_http_requests_total",
		"HTTP requests served, by route, method and status class.",
		"route", "method", "status")
	latency := r.HistogramVec("atm_http_request_seconds",
		"HTTP request latency in seconds, by route.",
		DefBuckets, "route").With(route)
	inflight := r.GaugeVec("atm_http_inflight_requests",
		"HTTP requests currently being served, by route.",
		"route").With(route)
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		inflight.Inc()
		defer inflight.Dec()
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(sw, req)
		latency.Observe(time.Since(start).Seconds())
		requests.With(route, req.Method, statusClass(sw.code)).Inc()
	})
}

// HealthzHandler reports liveness as JSON: {"status":"ok","uptime_seconds":...}.
// It always returns 200 — the process answering at all is the health
// signal for a daemon whose only state is in memory.
func HealthzHandler(start time.Time) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status":         "ok",
			"uptime_seconds": time.Since(start).Seconds(),
		})
	})
}
