package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrency hammers one registry from many goroutines —
// run under -race it proves the registry, vecs and all three metric
// kinds are safe for concurrent registration and update.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("c_total", "counter")
			gv := r.GaugeVec("g", "gauge", "who")
			h := r.Histogram("h_seconds", "histogram", []float64{0.1, 1})
			for i := 0; i < perG; i++ {
				c.Inc()
				gv.With("a").Add(1)
				gv.With("b").Add(-1)
				h.Observe(float64(i%3) / 2)
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("c_total", "counter").Value(); got != goroutines*perG {
		t.Errorf("counter = %v, want %d", got, goroutines*perG)
	}
	if got := r.GaugeVec("g", "gauge", "who").With("a").Value(); got != goroutines*perG {
		t.Errorf("gauge a = %v, want %d", got, goroutines*perG)
	}
	if got := r.Histogram("h_seconds", "histogram", nil).Count(); got != goroutines*perG {
		t.Errorf("histogram count = %v, want %d", got, goroutines*perG)
	}
}

// TestCounterMonotone verifies negative adds are dropped.
func TestCounterMonotone(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	c.Add(3)
	c.Add(-2)
	if got := c.Value(); got != 3 {
		t.Errorf("counter = %v, want 3", got)
	}
}

// TestHistogramBuckets pins the inclusive upper-bound semantics: a
// value equal to a bound lands in that bucket, one just above lands in
// the next, and everything past the last bound lands in +Inf.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.000001, 2, 5, 5.1, 100} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 1, 2} // (≤1)=0.5,1  (≤2)=1.000001,2  (≤5)=5  (+Inf)=5.1,100
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+1.000001+2+5+5.1+100; got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

// TestWritePrometheusGolden pins the exact text exposition: sorted
// families, sorted children, cumulative histogram buckets with +Inf,
// and label escaping.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("atm_a_total", "A counter.").Add(3)
	v := r.CounterVec("atm_b_total", "A labeled counter.", "route", "status")
	v.With("/cgroups/:id", "2xx").Add(2)
	v.With(`q"u\o`+"\n"+`te`, "5xx").Inc()
	r.Gauge("atm_g", "A gauge.").Set(-1.5)
	h := r.Histogram("atm_h_seconds", "A histogram.", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(2)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP atm_a_total A counter.
# TYPE atm_a_total counter
atm_a_total 3
# HELP atm_b_total A labeled counter.
# TYPE atm_b_total counter
atm_b_total{route="/cgroups/:id",status="2xx"} 2
atm_b_total{route="q\"u\\o\nte",status="5xx"} 1
# HELP atm_g A gauge.
# TYPE atm_g gauge
atm_g -1.5
# HELP atm_h_seconds A histogram.
# TYPE atm_h_seconds histogram
atm_h_seconds_bucket{le="0.5"} 1
atm_h_seconds_bucket{le="1"} 2
atm_h_seconds_bucket{le="+Inf"} 3
atm_h_seconds_sum 3
atm_h_seconds_count 3
`
	if sb.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

// TestRegistryHandler round-trips the exposition over HTTP with the
// expected content type.
func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Errorf("body missing sample:\n%s", rec.Body.String())
	}
}

// TestFamilyReuse checks idempotent re-registration and the panic on a
// type clash.
func TestFamilyReuse(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "first")
	b := r.Counter("same_total", "second help ignored")
	if a != b {
		t.Error("re-registration returned a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on type clash")
		}
	}()
	r.Gauge("same_total", "clash")
}
