package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Event-bus metrics: publication volume and the two loss paths (sink
// channel full, sink write failure). A rising drop counter is the
// operator's cue to widen the sink buffer or fix the disk.
var (
	eventsPublished = Default().Counter("atm_events_published_total",
		"Decision events published on the engine event bus.")
	eventsDropped = Default().Counter("atm_events_dropped_total",
		"Decision events dropped by the JSONL sink (channel full or write failure); the in-memory ring tail is unaffected.")
)

// DefaultEventCap is the ring capacity an EventLog keeps for the
// GET /v1/events tail when the caller does not choose one.
const DefaultEventCap = 2048

// Event is one typed decision record from the streaming engine: which
// box was stepped on which shard pass, whether the step researched or
// refitted (and why), the plan delta it published, and the trace id
// tying it to the span tree of the same step. The flat shape keeps
// Publish allocation-free and one JSON line per event.
type Event struct {
	// Time is when the event was published (stamped by Publish when
	// zero).
	Time time.Time `json:"ts"`
	// Type discriminates the event: "plan" (a step published a plan),
	// "evicted" (a window aged out before its step), "step_error" (a
	// hard, un-degradable step failure), "apply_error" (actuation push
	// failed).
	Type string `json:"type"`
	// Box is the box id.
	Box string `json:"box,omitempty"`
	// Shard and Pass locate the scheduling pass that fired the step.
	Shard int    `json:"shard"`
	Pass  uint64 `json:"pass,omitempty"`
	// Step is the zero-based rolling-step index.
	Step int `json:"step"`
	// Research reports a full signature search; Reason is the decision
	// cause (core.ReasonColdStart, core.ReasonDriftMAPE, ...).
	Research bool   `json:"research,omitempty"`
	Reason   string `json:"reason,omitempty"`
	// Degraded marks a stingy-fallback plan.
	Degraded bool `json:"degraded,omitempty"`
	// TicketsBefore/TicketsAfter aggregate CPU+RAM tickets over the
	// step's evaluation horizon.
	TicketsBefore int `json:"tickets_before,omitempty"`
	TicketsAfter  int `json:"tickets_after,omitempty"`
	// MeanMAPE is the step's realized mean prediction error (0 for
	// degraded steps).
	MeanMAPE float64 `json:"mean_mape,omitempty"`
	// DeltaVMs counts VMs whose CPU or RAM target changed vs the box's
	// previous published plan (the full VM count on the first plan).
	DeltaVMs int `json:"delta_vms,omitempty"`
	// Lambda is the forecast trust the robust controller blended the
	// plan with; BlendReason is the control.Reason* constant behind it.
	// Both are absent when the controller is disabled — Lambda is
	// meaningful only when BlendReason is set.
	Lambda      float64 `json:"lambda,omitempty"`
	BlendReason string  `json:"blend_reason,omitempty"`
	// TraceID links the event to the step's span tree ("" with tracing
	// off).
	TraceID string `json:"trace_id,omitempty"`
	// Err carries the step/apply error, if any.
	Err string `json:"err,omitempty"`
}

// EventLog is a bounded, drop-counting event bus: Publish appends to a
// fixed ring (the /v1/events tail) and, when a sink is attached,
// forwards a copy to an async JSONL writer through a buffered channel.
// Publish never blocks and never allocates — a full sink channel drops
// the event (counted in atm_events_dropped_total) rather than stalling
// the engine's step path.
type EventLog struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total uint64

	// sink sends happen under mu (non-blocking, so the lock is never
	// held across a stall), which is what makes Close's channel close
	// race-free against concurrent Publish calls.
	sink     chan Event
	sinkDone chan struct{}
	closed   bool

	published atomic.Uint64
	dropped   atomic.Uint64
}

// NewEventLog returns an event log retaining up to capacity events
// (capacity < 1 selects DefaultEventCap) with no sink attached.
func NewEventLog(capacity int) *EventLog {
	if capacity < 1 {
		capacity = DefaultEventCap
	}
	return &EventLog{buf: make([]Event, capacity)}
}

// AttachSink starts an async JSONL writer goroutine encoding every
// subsequently published event to w, one JSON object per line. Attach
// at most one sink, before concurrent Publish traffic starts. Close
// stops the writer and flushes the channel.
func (l *EventLog) AttachSink(w io.Writer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sink != nil || l.closed {
		return
	}
	// One batch of passes can burst many events; size the channel to
	// the ring so a slow disk sheds load by dropping, not blocking.
	l.sink = make(chan Event, len(l.buf))
	l.sinkDone = make(chan struct{})
	go func(ch chan Event, done chan struct{}, w io.Writer) {
		defer close(done)
		enc := json.NewEncoder(w)
		for ev := range ch {
			if err := enc.Encode(ev); err != nil {
				l.dropped.Add(1)
				eventsDropped.Inc()
			}
		}
	}(l.sink, l.sinkDone, w)
}

// Publish records the event on the ring and forwards it to the sink
// when one is attached. It never blocks: a full sink channel counts a
// drop instead. Safe for concurrent use.
func (l *EventLog) Publish(ev Event) {
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	l.mu.Lock()
	l.buf[l.next] = ev
	l.next = (l.next + 1) % len(l.buf)
	l.total++
	dropped := false
	if l.sink != nil && !l.closed {
		select {
		case l.sink <- ev:
		default:
			dropped = true
		}
	}
	l.mu.Unlock()
	l.published.Add(1)
	eventsPublished.Inc()
	if dropped {
		l.dropped.Add(1)
		eventsDropped.Inc()
	}
}

// Tail returns up to n retained events, oldest first. box, when
// non-empty, filters to that box's events. n < 1 returns every
// retained (matching) event.
func (l *EventLog) Tail(n int, box string) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := int(l.total)
	if uint64(kept) != l.total || kept > len(l.buf) {
		kept = len(l.buf)
	}
	start := (l.next - kept + len(l.buf)) % len(l.buf)
	out := make([]Event, 0, kept)
	for i := 0; i < kept; i++ {
		ev := &l.buf[(start+i)%len(l.buf)]
		if box != "" && ev.Box != box {
			continue
		}
		out = append(out, *ev)
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// Total returns how many events were ever published.
func (l *EventLog) Total() uint64 { return l.published.Load() }

// Dropped returns how many events this log's sink lost (channel full
// or write failure).
func (l *EventLog) Dropped() uint64 { return l.dropped.Load() }

// Close stops the sink writer, draining events already queued. The
// ring tail stays readable; later Publish calls still land on the ring
// but are no longer forwarded. Safe to call multiple times and with no
// sink attached.
func (l *EventLog) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	sink, done := l.sink, l.sinkDone
	if sink != nil {
		close(sink)
	}
	l.mu.Unlock()
	if sink != nil {
		<-done
	}
}
