package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestEventLogRingTail(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 6; i++ {
		box := "a"
		if i%2 == 1 {
			box = "b"
		}
		l.Publish(Event{Type: "plan", Box: box, Step: i})
	}
	all := l.Tail(0, "")
	if len(all) != 4 {
		t.Fatalf("tail kept %d events, want ring capacity 4", len(all))
	}
	// Oldest first, and only the newest 4 survive (steps 2..5).
	for i, ev := range all {
		if ev.Step != i+2 {
			t.Fatalf("tail[%d].Step = %d, want %d", i, ev.Step, i+2)
		}
		if ev.Time.IsZero() {
			t.Fatalf("tail[%d] missing publish timestamp", i)
		}
	}
	onlyB := l.Tail(0, "b")
	for _, ev := range onlyB {
		if ev.Box != "b" {
			t.Fatalf("box filter leaked event for %q", ev.Box)
		}
	}
	if len(onlyB) != 2 {
		t.Fatalf("box filter kept %d events, want 2", len(onlyB))
	}
	if last := l.Tail(1, ""); len(last) != 1 || last[0].Step != 5 {
		t.Fatalf("Tail(1) = %+v, want newest event (step 5)", last)
	}
	if l.Total() != 6 {
		t.Fatalf("Total = %d, want 6", l.Total())
	}
}

func TestEventLogSinkWritesJSONL(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(8)
	l.AttachSink(&buf)
	l.Publish(Event{Type: "plan", Box: "box-1", Reason: "cold_start", Research: true})
	l.Publish(Event{Type: "evicted", Box: "box-2"})
	l.Close()

	sc := bufio.NewScanner(&buf)
	var lines []Event
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("sink line is not JSON: %v (%s)", err, sc.Text())
		}
		lines = append(lines, ev)
	}
	if len(lines) != 2 {
		t.Fatalf("sink wrote %d lines, want 2", len(lines))
	}
	if lines[0].Box != "box-1" || lines[0].Reason != "cold_start" || !lines[0].Research {
		t.Fatalf("sink line 0 = %+v", lines[0])
	}
	if l.Dropped() != 0 {
		t.Fatalf("dropped %d events on a fast sink", l.Dropped())
	}
	// Publishing after Close still lands on the ring, without panicking
	// on the closed sink channel.
	l.Publish(Event{Type: "plan", Box: "box-3"})
	if got := l.Tail(1, ""); len(got) != 1 || got[0].Box != "box-3" {
		t.Fatalf("post-close publish missing from ring: %+v", got)
	}
}

func TestEventLogConcurrentPublishAndClose(t *testing.T) {
	l := NewEventLog(16)
	l.AttachSink(io_discard{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Publish(Event{Type: "plan", Step: i})
			}
		}()
	}
	l.Close() // races the publishers by design: must not panic
	wg.Wait()
	if l.Total() != 800 {
		t.Fatalf("published %d, want 800", l.Total())
	}
}

// io_discard avoids importing io just for Discard in this test file.
type io_discard struct{}

func (io_discard) Write(p []byte) (int, error) { return len(p), nil }

func TestStartSpanLinkedAdoptsTrace(t *testing.T) {
	ring := NewRingExporter(16)
	tr := NewTracer(ring)
	ctx := WithTracer(context.Background(), tr)

	_, root := StartSpan(ctx, "serve.ingest")
	rootTrace, rootSpan := root.TraceID(), root.SpanID()
	if rootTrace == "" || rootSpan == "" {
		t.Fatal("root span has empty ids")
	}
	root.End()

	// A later, unrelated context adopts the recorded ids.
	_, linked := StartSpanLinked(WithTracer(context.Background(), tr), "engine.step", rootTrace, rootSpan)
	if linked.TraceID() != rootTrace {
		t.Fatalf("linked trace = %q, want %q", linked.TraceID(), rootTrace)
	}
	linked.End()

	spans := ring.Trace(rootTrace)
	if len(spans) != 2 {
		t.Fatalf("Trace returned %d spans, want 2", len(spans))
	}
	if spans[1].ParentID != rootSpan {
		t.Fatalf("linked span parent = %q, want %q", spans[1].ParentID, rootSpan)
	}

	// Empty trace id degrades to a fresh root.
	_, fresh := StartSpanLinked(WithTracer(context.Background(), tr), "engine.step", "", "")
	if fresh.TraceID() == rootTrace || fresh.TraceID() == "" {
		t.Fatalf("fresh linked span trace = %q", fresh.TraceID())
	}
	fresh.End()

	// No tracer: nil span, all methods safe.
	_, none := StartSpanLinked(context.Background(), "x", rootTrace, rootSpan)
	if none != nil {
		t.Fatal("expected nil span without a tracer")
	}
	if none.TraceID() != "" || none.SpanID() != "" {
		t.Fatal("nil span ids must be empty")
	}
}

func TestRingExporterCountsOverwrites(t *testing.T) {
	r := NewRingExporter(2)
	for i := 0; i < 5; i++ {
		r.ExportSpan(SpanData{TraceID: "t", SpanID: "s"})
	}
	if r.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", r.Dropped())
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d, want 5", r.Total())
	}
}

func TestFileSpanExporterRotates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spans.jsonl")
	// Cap small enough that a handful of spans forces a rotation.
	e, err := NewFileSpanExporter(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		e.ExportSpan(SpanData{TraceID: "0123456789abcdef", SpanID: "fedcba9876543210", Name: "core.box"})
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if e.Dropped() != 0 {
		t.Fatalf("dropped %d spans on a healthy disk (err=%v)", e.Dropped(), e.Err())
	}
	active, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rotated, err := os.ReadFile(path + ".1")
	if err != nil {
		t.Fatalf("expected rotated segment: %v", err)
	}
	if len(active) > 256+128 || len(rotated) > 256+128 {
		t.Fatalf("segments exceed the cap: active=%d rotated=%d", len(active), len(rotated))
	}
	// Every line in both segments is valid JSON, none torn by rotation.
	total := 0
	for _, blob := range [][]byte{rotated, active} {
		sc := bufio.NewScanner(bytes.NewReader(blob))
		for sc.Scan() {
			var s SpanData
			if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
				t.Fatalf("torn span line %q: %v", sc.Text(), err)
			}
			total++
		}
	}
	// Rotation replaces .1, so only the last two segments survive; the
	// exporter never tears a line and the retained count is positive.
	if total == 0 {
		t.Fatal("no spans retained across rotation")
	}
	// Exporting after Close is a counted drop, not a crash.
	e.ExportSpan(SpanData{Name: "late"})
	if e.Dropped() != 1 {
		t.Fatalf("post-close export not counted: dropped=%d", e.Dropped())
	}
}

func TestRuntimeMetricsScrape(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{
		"atm_go_goroutines",
		"atm_go_heap_inuse_bytes",
		"atm_go_heap_sys_bytes",
		"atm_go_gc_runs_total",
		"atm_go_gc_pause_seconds_total",
	} {
		if !strings.Contains(out, "# TYPE "+name+" ") {
			t.Fatalf("scrape missing %s:\n%s", name, out)
		}
	}
	// Goroutine gauge carries a live value.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "atm_go_goroutines ") {
			if strings.TrimPrefix(line, "atm_go_goroutines ") == "0" {
				t.Fatalf("goroutine gauge is zero: %s", line)
			}
			return
		}
	}
	t.Fatal("no atm_go_goroutines sample")
}
