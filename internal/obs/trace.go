package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Exporter loss accounting: the ring drops its oldest span on every
// overwrite, the JSONL/file exporters drop on write or rotation
// failure. One counter, labeled by exporter kind.
var (
	traceDropped = Default().CounterVec("atm_trace_dropped_total",
		"Finished spans dropped by exporters: ring overwrites of the oldest span, JSONL/file write or rotation failures.",
		"exporter")
	ringSpansDropped  = traceDropped.With("ring")
	jsonlSpansDropped = traceDropped.With("jsonl")
	fileSpansDropped  = traceDropped.With("file")
)

// SpanData is the exported record of one finished span. Parent/child
// edges are carried by IDs so a flat JSON-lines dump reassembles into
// the span tree.
type SpanData struct {
	// TraceID groups every span of one logical operation (e.g. one
	// box-resize through the whole pipeline).
	TraceID string `json:"trace_id"`
	// SpanID identifies this span within the process.
	SpanID string `json:"span_id"`
	// ParentID is the enclosing span's SpanID; empty for roots.
	ParentID string `json:"parent_id,omitempty"`
	// Name is the operation name (e.g. "spatial.search").
	Name string `json:"name"`
	// Start is the span's wall-clock start time.
	Start time.Time `json:"start"`
	// DurationNS is the span's duration in nanoseconds.
	DurationNS int64 `json:"duration_ns"`
	// Attrs carries span attributes (box id, series count, ...).
	Attrs Attrs `json:"attrs,omitempty"`
}

// Duration returns the span duration.
func (s SpanData) Duration() time.Duration { return time.Duration(s.DurationNS) }

// Attr is one span attribute.
type Attr struct {
	Key   string
	Value any
}

// Attrs is a span's attribute list in set order. A flat pair slice,
// not a map: spans on the engine's hot loop carry a handful of
// attributes, and a small slice costs one allocation where a map costs
// several plus per-key hashing. It still reads and writes as a JSON
// object, so exported span dumps are unchanged.
type Attrs []Attr

// Get returns the value set for key.
func (a Attrs) Get(key string) (any, bool) {
	for i := range a {
		if a[i].Key == key {
			return a[i].Value, true
		}
	}
	return nil, false
}

// MarshalJSON renders the attribute list as a JSON object in set
// order.
func (a Attrs) MarshalJSON() ([]byte, error) {
	buf := make([]byte, 0, 16*len(a)+2)
	buf = append(buf, '{')
	for i := range a {
		if i > 0 {
			buf = append(buf, ',')
		}
		k, err := json.Marshal(a[i].Key)
		if err != nil {
			return nil, err
		}
		v, err := json.Marshal(a[i].Value)
		if err != nil {
			return nil, err
		}
		buf = append(buf, k...)
		buf = append(buf, ':')
		buf = append(buf, v...)
	}
	return append(buf, '}'), nil
}

// UnmarshalJSON accepts a JSON object (key order is preserved as far
// as encoding/json reports it — i.e. not at all — which is fine for
// consumers that only Get by key or render sorted).
func (a *Attrs) UnmarshalJSON(b []byte) error {
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		return err
	}
	out := make(Attrs, 0, len(m))
	for k, v := range m {
		out = append(out, Attr{Key: k, Value: v})
	}
	*a = out
	return nil
}

// Exporter receives finished spans. Implementations must be safe for
// concurrent use: spans end on whatever goroutine ran the work.
type Exporter interface {
	ExportSpan(SpanData)
}

// Tracer creates spans and fans finished spans out to its exporters.
// A nil *Tracer is valid and produces no-op spans, so instrumented
// code never branches on "is tracing on".
type Tracer struct {
	exporters []Exporter
	ids       atomic.Uint64
}

// NewTracer returns a tracer exporting to the given exporters.
func NewTracer(exporters ...Exporter) *Tracer {
	return &Tracer{exporters: exporters}
}

func (t *Tracer) nextID() string {
	// Fixed-width hex without fmt: id generation sits on the span hot
	// path, and Sprintf's reflection costs show up at fleet step rates.
	var buf [16]byte
	id := t.ids.Add(1)
	for i := 15; i >= 0; i-- {
		buf[i] = "0123456789abcdef"[id&0xf]
		id >>= 4
	}
	return string(buf[:])
}

// Span is one in-flight operation. All methods are safe on a nil
// receiver (the no-tracer case) and after End (later calls are
// dropped).
type Span struct {
	tracer *Tracer

	mu    sync.Mutex
	data  SpanData
	start time.Time // monotonic-clock anchor for the duration
	ended bool
}

// ctxKey keys the tracer and current span in a context.
type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
)

// WithTracer returns a context carrying the tracer; StartSpan calls
// under it produce real spans.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the context's tracer, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// SpanFrom returns the context's current span, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// StartSpan begins a span named name under the context's current span
// (a root span if there is none) and returns a derived context
// carrying the new span. Without a tracer in the context it returns
// the context unchanged and a nil span, whose methods are all no-ops —
// tracing costs one context lookup when disabled.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	s := &Span{tracer: t, start: time.Now()}
	s.data.Name = name
	s.data.Start = s.start
	s.data.SpanID = t.nextID()
	if parent := SpanFrom(ctx); parent != nil {
		parent.mu.Lock()
		s.data.TraceID = parent.data.TraceID
		s.data.ParentID = parent.data.SpanID
		parent.mu.Unlock()
	} else {
		s.data.TraceID = t.nextID()
	}
	return context.WithValue(ctx, spanKey, s), s
}

// StartSpanLinked is StartSpan for cross-request propagation: when the
// context has no enclosing span, the new span adopts the given trace
// id with parentID as its parent edge — linking, say, an engine step
// to the ingest request whose samples made the box ready, even though
// the two ran on different goroutines at different times. An enclosing
// span in the context wins over the link; an empty traceID starts a
// fresh trace, exactly like StartSpan.
func StartSpanLinked(ctx context.Context, name, traceID, parentID string) (context.Context, *Span) {
	if parent := SpanFrom(ctx); parent != nil || traceID == "" {
		return StartSpan(ctx, name)
	}
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	s := &Span{tracer: t, start: time.Now()}
	s.data.Name = name
	s.data.Start = s.start
	s.data.SpanID = t.nextID()
	s.data.TraceID = traceID
	s.data.ParentID = parentID
	return context.WithValue(ctx, spanKey, s), s
}

// LinkedSpan is StartSpanLinked without context plumbing: a standalone
// span adopting the given trace id (or opening a fresh trace when
// empty). For hot paths that need the span itself but will not hang
// child spans off a context — it skips the two context allocations
// StartSpanLinked pays per call. Nil tracers return nil spans, whose
// methods are all no-ops.
func (t *Tracer) LinkedSpan(name, traceID, parentID string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tracer: t, start: time.Now()}
	s.data.Name = name
	s.data.Start = s.start
	s.data.SpanID = t.nextID()
	if traceID == "" {
		s.data.TraceID = t.nextID()
	} else {
		s.data.TraceID = traceID
		s.data.ParentID = parentID
	}
	return s
}

// TraceID returns the span's trace id ("" on a nil span). Immutable
// after StartSpan, so no lock is needed.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.data.TraceID
}

// SpanID returns the span's id ("" on a nil span).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.data.SpanID
}

// SetAttr attaches an attribute to the span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.data.Attrs == nil {
		// Pre-size for the typical attribute count so the hot step path
		// pays one allocation, not map construction plus growth.
		s.data.Attrs = make(Attrs, 0, 4)
	}
	for i := range s.data.Attrs {
		if s.data.Attrs[i].Key == key {
			s.data.Attrs[i].Value = value
			return
		}
	}
	s.data.Attrs = append(s.data.Attrs, Attr{Key: key, Value: value})
}

// End finishes the span and exports it. Safe to call once; later calls
// are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.DurationNS = int64(time.Since(s.start))
	data := s.data
	tracer := s.tracer
	s.mu.Unlock()
	for _, e := range tracer.exporters {
		e.ExportSpan(data)
	}
}

// RingExporter keeps the most recent finished spans in a fixed-size
// ring buffer — the in-memory view a debugging session or test reads
// back.
type RingExporter struct {
	mu      sync.Mutex
	buf     []SpanData
	next    int
	total   int
	dropped int
}

// NewRingExporter returns a ring holding up to capacity spans
// (capacity < 1 is clamped to 1).
func NewRingExporter(capacity int) *RingExporter {
	if capacity < 1 {
		capacity = 1
	}
	return &RingExporter{buf: make([]SpanData, capacity)}
}

// ExportSpan implements Exporter. Once the ring is full every new span
// overwrites the oldest retained one; the overwrite is counted as a
// drop (atm_trace_dropped_total{exporter="ring"}).
func (r *RingExporter) ExportSpan(s SpanData) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total >= len(r.buf) {
		r.dropped++
		ringSpansDropped.Inc()
	}
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
	r.total++
}

// Spans returns the retained spans, oldest first.
func (r *RingExporter) Spans() []SpanData {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.total
	if n > len(r.buf) {
		n = len(r.buf)
	}
	out := make([]SpanData, 0, n)
	start := (r.next - n + len(r.buf)) % len(r.buf)
	for i := 0; i < n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Trace returns the retained spans of one trace, oldest first — the
// span tree the debug endpoint renders for a published plan.
func (r *RingExporter) Trace(traceID string) []SpanData {
	if traceID == "" {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.total
	if n > len(r.buf) {
		n = len(r.buf)
	}
	var out []SpanData
	start := (r.next - n + len(r.buf)) % len(r.buf)
	for i := 0; i < n; i++ {
		if s := &r.buf[(start+i)%len(r.buf)]; s.TraceID == traceID {
			out = append(out, *s)
		}
	}
	return out
}

// Total returns how many spans were ever exported to the ring.
func (r *RingExporter) Total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many retained spans were overwritten before
// anyone read them.
func (r *RingExporter) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// JSONLExporter writes each finished span as one JSON line — the
// file-dump format `atmbench -trace` emits and external span viewers
// ingest.
type JSONLExporter struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONLExporter returns an exporter writing JSON lines to w.
func NewJSONLExporter(w io.Writer) *JSONLExporter {
	return &JSONLExporter{enc: json.NewEncoder(w)}
}

// ExportSpan implements Exporter. After the first write error the
// exporter stops writing and counts every subsequent span as dropped
// (atm_trace_dropped_total{exporter="jsonl"}).
func (e *JSONLExporter) ExportSpan(s SpanData) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		jsonlSpansDropped.Inc()
		return
	}
	if e.err = e.enc.Encode(s); e.err != nil {
		jsonlSpansDropped.Inc()
	}
}

// Err returns the first write error, if any.
func (e *JSONLExporter) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// DefaultSpanFileMax bounds a FileSpanExporter segment at 64 MiB
// before rotation when the caller does not choose a cap.
const DefaultSpanFileMax = 64 << 20

// FileSpanExporter writes spans as JSON lines to a file with
// size-bounded rotation: when the active segment would exceed the
// byte cap it is renamed to path+".1" (replacing the previous rotated
// segment) and a fresh segment starts — the daemon-lifetime variant of
// JSONLExporter, whose unbounded growth is only acceptable for one-shot
// bench dumps. Disk is bounded at ~2x the cap. Spans lost to write or
// rotation failures are counted, not retried.
type FileSpanExporter struct {
	mu      sync.Mutex
	path    string
	max     int64
	f       *os.File
	size    int64
	dropped int
	err     error // most recent write/rotate error
}

// NewFileSpanExporter opens (truncating) path for span output, rotating
// at maxBytes per segment (maxBytes <= 0 selects DefaultSpanFileMax).
func NewFileSpanExporter(path string, maxBytes int64) (*FileSpanExporter, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultSpanFileMax
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &FileSpanExporter{path: path, max: maxBytes, f: f}, nil
}

// ExportSpan implements Exporter.
func (e *FileSpanExporter) ExportSpan(s SpanData) {
	line, err := json.Marshal(s)
	if err != nil {
		e.drop(err)
		return
	}
	line = append(line, '\n')
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.f == nil {
		e.dropLocked(errFileClosed)
		return
	}
	if e.size > 0 && e.size+int64(len(line)) > e.max {
		e.rotateLocked()
	}
	n, err := e.f.Write(line)
	e.size += int64(n)
	if err != nil {
		e.dropLocked(err)
		return
	}
	e.err = nil
}

var errFileClosed = fmt.Errorf("obs: span file exporter closed")

// rotateLocked renames the active segment to path+".1" and starts a
// fresh one. On failure the active segment stays open (the current
// span still lands; the size bound is temporarily exceeded rather than
// losing data silently).
func (e *FileSpanExporter) rotateLocked() {
	if err := e.f.Close(); err != nil {
		e.err = err
	}
	if err := os.Rename(e.path, e.path+".1"); err != nil {
		e.err = err
	}
	f, err := os.Create(e.path)
	if err != nil {
		// Could not start a fresh segment: try to keep the old handle
		// path alive by reopening in append mode; give up on failure.
		f, err = os.OpenFile(e.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			e.err = err
			e.f = nil
			return
		}
	}
	e.f = f
	e.size = 0
}

func (e *FileSpanExporter) drop(err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.dropLocked(err)
}

func (e *FileSpanExporter) dropLocked(err error) {
	e.err = err
	e.dropped++
	fileSpansDropped.Inc()
}

// Dropped returns how many spans were lost to write/rotation failures.
func (e *FileSpanExporter) Dropped() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.dropped
}

// Err returns the most recent write/rotation error, if any.
func (e *FileSpanExporter) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Close flushes and closes the active segment. Spans exported after
// Close are counted as dropped.
func (e *FileSpanExporter) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.f == nil {
		return nil
	}
	err := e.f.Close()
	e.f = nil
	return err
}
