package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SpanData is the exported record of one finished span. Parent/child
// edges are carried by IDs so a flat JSON-lines dump reassembles into
// the span tree.
type SpanData struct {
	// TraceID groups every span of one logical operation (e.g. one
	// box-resize through the whole pipeline).
	TraceID string `json:"trace_id"`
	// SpanID identifies this span within the process.
	SpanID string `json:"span_id"`
	// ParentID is the enclosing span's SpanID; empty for roots.
	ParentID string `json:"parent_id,omitempty"`
	// Name is the operation name (e.g. "spatial.search").
	Name string `json:"name"`
	// Start is the span's wall-clock start time.
	Start time.Time `json:"start"`
	// DurationNS is the span's duration in nanoseconds.
	DurationNS int64 `json:"duration_ns"`
	// Attrs carries span attributes (box id, series count, ...).
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Duration returns the span duration.
func (s SpanData) Duration() time.Duration { return time.Duration(s.DurationNS) }

// Exporter receives finished spans. Implementations must be safe for
// concurrent use: spans end on whatever goroutine ran the work.
type Exporter interface {
	ExportSpan(SpanData)
}

// Tracer creates spans and fans finished spans out to its exporters.
// A nil *Tracer is valid and produces no-op spans, so instrumented
// code never branches on "is tracing on".
type Tracer struct {
	exporters []Exporter
	ids       atomic.Uint64
}

// NewTracer returns a tracer exporting to the given exporters.
func NewTracer(exporters ...Exporter) *Tracer {
	return &Tracer{exporters: exporters}
}

func (t *Tracer) nextID() string {
	return fmt.Sprintf("%016x", t.ids.Add(1))
}

// Span is one in-flight operation. All methods are safe on a nil
// receiver (the no-tracer case) and after End (later calls are
// dropped).
type Span struct {
	tracer *Tracer

	mu    sync.Mutex
	data  SpanData
	start time.Time // monotonic-clock anchor for the duration
	ended bool
}

// ctxKey keys the tracer and current span in a context.
type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
)

// WithTracer returns a context carrying the tracer; StartSpan calls
// under it produce real spans.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the context's tracer, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// SpanFrom returns the context's current span, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// StartSpan begins a span named name under the context's current span
// (a root span if there is none) and returns a derived context
// carrying the new span. Without a tracer in the context it returns
// the context unchanged and a nil span, whose methods are all no-ops —
// tracing costs one context lookup when disabled.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	s := &Span{tracer: t, start: time.Now()}
	s.data.Name = name
	s.data.Start = s.start
	s.data.SpanID = t.nextID()
	if parent := SpanFrom(ctx); parent != nil {
		parent.mu.Lock()
		s.data.TraceID = parent.data.TraceID
		s.data.ParentID = parent.data.SpanID
		parent.mu.Unlock()
	} else {
		s.data.TraceID = t.nextID()
	}
	return context.WithValue(ctx, spanKey, s), s
}

// SetAttr attaches an attribute to the span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.data.Attrs == nil {
		s.data.Attrs = make(map[string]any)
	}
	s.data.Attrs[key] = value
}

// End finishes the span and exports it. Safe to call once; later calls
// are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.DurationNS = int64(time.Since(s.start))
	data := s.data
	tracer := s.tracer
	s.mu.Unlock()
	for _, e := range tracer.exporters {
		e.ExportSpan(data)
	}
}

// RingExporter keeps the most recent finished spans in a fixed-size
// ring buffer — the in-memory view a debugging session or test reads
// back.
type RingExporter struct {
	mu    sync.Mutex
	buf   []SpanData
	next  int
	total int
}

// NewRingExporter returns a ring holding up to capacity spans
// (capacity < 1 is clamped to 1).
func NewRingExporter(capacity int) *RingExporter {
	if capacity < 1 {
		capacity = 1
	}
	return &RingExporter{buf: make([]SpanData, capacity)}
}

// ExportSpan implements Exporter.
func (r *RingExporter) ExportSpan(s SpanData) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
	r.total++
}

// Spans returns the retained spans, oldest first.
func (r *RingExporter) Spans() []SpanData {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.total
	if n > len(r.buf) {
		n = len(r.buf)
	}
	out := make([]SpanData, 0, n)
	start := (r.next - n + len(r.buf)) % len(r.buf)
	for i := 0; i < n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Total returns how many spans were ever exported to the ring.
func (r *RingExporter) Total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// JSONLExporter writes each finished span as one JSON line — the
// file-dump format `atmbench -trace` emits and external span viewers
// ingest.
type JSONLExporter struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONLExporter returns an exporter writing JSON lines to w.
func NewJSONLExporter(w io.Writer) *JSONLExporter {
	return &JSONLExporter{enc: json.NewEncoder(w)}
}

// ExportSpan implements Exporter.
func (e *JSONLExporter) ExportSpan(s SpanData) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return
	}
	e.err = e.enc.Encode(s)
}

// Err returns the first write error, if any.
func (e *JSONLExporter) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}
