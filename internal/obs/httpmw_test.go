package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestInstrumentHandler checks the per-route middleware: request
// counts by method and status class, the latency histogram, and the
// in-flight gauge observed mid-request.
func TestInstrumentHandler(t *testing.T) {
	r := NewRegistry()
	var sawInflight float64
	inner := http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		sawInflight = r.GaugeVec("atm_http_inflight_requests", "", "route").With("/cgroups/:id").Value()
		if req.Method == http.MethodDelete {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.Write([]byte("ok")) // implicit 200
	})
	h := r.InstrumentHandler("/cgroups/:id", inner)

	for _, m := range []string{"GET", "GET", "DELETE"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(m, "/cgroups/vm-1", nil))
	}

	if sawInflight != 1 {
		t.Errorf("in-flight during request = %v, want 1", sawInflight)
	}
	reqs := r.CounterVec("atm_http_requests_total", "", "route", "method", "status")
	if got := reqs.With("/cgroups/:id", "GET", "2xx").Value(); got != 2 {
		t.Errorf("GET 2xx = %v, want 2", got)
	}
	if got := reqs.With("/cgroups/:id", "DELETE", "4xx").Value(); got != 1 {
		t.Errorf("DELETE 4xx = %v, want 1", got)
	}
	lat := r.HistogramVec("atm_http_request_seconds", "", nil, "route").With("/cgroups/:id")
	if lat.Count() != 3 {
		t.Errorf("latency observations = %d, want 3", lat.Count())
	}
	if got := r.GaugeVec("atm_http_inflight_requests", "", "route").With("/cgroups/:id").Value(); got != 0 {
		t.Errorf("in-flight after requests = %v, want 0", got)
	}
}

// TestStatusClass pins the class bucketing.
func TestStatusClass(t *testing.T) {
	cases := map[int]string{200: "2xx", 204: "2xx", 301: "3xx", 404: "4xx", 500: "5xx", 99: "other", 700: "other"}
	for code, want := range cases {
		if got := statusClass(code); got != want {
			t.Errorf("statusClass(%d) = %q, want %q", code, got, want)
		}
	}
}

// TestHealthzHandler checks the liveness payload.
func TestHealthzHandler(t *testing.T) {
	rec := httptest.NewRecorder()
	HealthzHandler(time.Now().Add(-time.Second)).ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var body struct {
		Status string  `json:"status"`
		Uptime float64 `json:"uptime_seconds"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" {
		t.Errorf("status = %q", body.Status)
	}
	if body.Uptime <= 0 {
		t.Errorf("uptime = %v, want > 0", body.Uptime)
	}
	if !strings.HasPrefix(rec.Header().Get("Content-Type"), "application/json") {
		t.Errorf("content type = %q", rec.Header().Get("Content-Type"))
	}
}
