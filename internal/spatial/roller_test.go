package spatial

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"atm/internal/race"
	"atm/internal/timeseries"
)

// rollerTrace builds a correlated multi-series workload of length
// total: a few driver series plus linear mixtures with noise, the
// shape the signature search produces signatures+dependents from.
func rollerTrace(rng *rand.Rand, nSeries, total int) []timeseries.Series {
	drivers := make([]timeseries.Series, 2)
	for d := range drivers {
		s := make(timeseries.Series, total)
		for i := range s {
			s[i] = 20 + 10*math.Sin(float64(i)/9+float64(d)*2) + rng.NormFloat64()
		}
		drivers[d] = s
	}
	out := make([]timeseries.Series, nSeries)
	for j := range out {
		s := make(timeseries.Series, total)
		w0 := 0.5 + rng.Float64()
		w1 := rng.Float64()
		for i := range s {
			s[i] = 5 + w0*drivers[0][i] + w1*drivers[1][i] + 0.3*rng.NormFloat64()
		}
		out[j] = s
	}
	return out
}

func sliceAll(series []timeseries.Series, from, to int) []timeseries.Series {
	out := make([]timeseries.Series, len(series))
	for i, s := range series {
		out[i] = s.Slice(from, to)
	}
	return out
}

// TestRollerMatchesRefit rolls windows forward and compares the
// incrementally maintained fits against the reference Refit within
// 1e-9 at every offset.
func TestRollerMatchesRefit(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const nSeries, n, shift, total = 8, 60, 12, 240
	series := rollerTrace(rng, nSeries, total)

	model, err := Search(sliceAll(series, 0, n), Config{Method: MethodCBC})
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	if len(model.Dependents) == 0 {
		t.Fatalf("fixture produced no dependents (signatures %v)", model.Signatures)
	}
	roller, err := NewRoller(sliceAll(series, 0, n), model)
	if err != nil {
		t.Fatalf("roller: %v", err)
	}
	for off := shift; off+n <= total; off += shift {
		win := sliceAll(series, off, off+n)
		if err := roller.Roll(win, shift); err != nil {
			t.Fatalf("offset %d: roll: %v", off, err)
		}
		ref, err := Refit(win, model.Signatures)
		if err != nil {
			t.Fatalf("offset %d: refit: %v", off, err)
		}
		for idx, want := range ref.Dependents {
			got := model.Dependents[idx]
			if d := math.Abs(got.Intercept - want.Intercept); d > 1e-9 {
				t.Fatalf("offset %d dep %d: intercept drift %g", off, idx, d)
			}
			for j := range want.Coef {
				if d := math.Abs(got.Coef[j] - want.Coef[j]); d > 1e-9 {
					t.Fatalf("offset %d dep %d: coef[%d] drift %g", off, idx, j, d)
				}
			}
			if d := math.Abs(got.R2 - want.R2); d > 1e-9 {
				t.Fatalf("offset %d dep %d: r2 drift %g", off, idx, d)
			}
		}
	}
}

// TestRollerRejectsNonRoll feeds a window whose overlap does not match
// and expects ErrNotRolled with the previous state intact.
func TestRollerRejectsNonRoll(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const nSeries, n, shift, total = 6, 50, 10, 120
	series := rollerTrace(rng, nSeries, total)
	model, err := Search(sliceAll(series, 0, n), Config{Method: MethodCBC})
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	roller, err := NewRoller(sliceAll(series, 0, n), model)
	if err != nil {
		t.Fatalf("roller: %v", err)
	}
	// A tampered overlap sample must be caught.
	win := sliceAll(series, shift, shift+n)
	tampered := win[0].Clone()
	tampered[5] += 1e-6
	win[0] = tampered
	if err := roller.Roll(win, shift); !errors.Is(err, ErrNotRolled) {
		t.Fatalf("tampered roll error = %v, want ErrNotRolled", err)
	}
	// Bad shifts are rejected outright.
	if err := roller.Roll(sliceAll(series, 0, n), 0); !errors.Is(err, ErrNotRolled) {
		t.Fatalf("shift 0 error = %v, want ErrNotRolled", err)
	}
	if err := roller.Roll(sliceAll(series, 0, n), n); !errors.Is(err, ErrNotRolled) {
		t.Fatalf("shift n error = %v, want ErrNotRolled", err)
	}
	// The failed attempts must not have corrupted state: a genuine roll
	// still matches the reference.
	win = sliceAll(series, shift, shift+n)
	if err := roller.Roll(win, shift); err != nil {
		t.Fatalf("genuine roll after rejects: %v", err)
	}
	ref, err := Refit(win, model.Signatures)
	if err != nil {
		t.Fatalf("refit: %v", err)
	}
	for idx, want := range ref.Dependents {
		if d := math.Abs(model.Dependents[idx].Intercept - want.Intercept); d > 1e-9 {
			t.Fatalf("dep %d intercept drift %g after rejected rolls", idx, d)
		}
	}
}

// TestRollerAllSignatures covers the degenerate box where every series
// is a signature: nothing to refit, rolls still succeed.
func TestRollerAllSignatures(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n, shift, total = 40, 8, 80
	series := []timeseries.Series{
		make(timeseries.Series, total),
		make(timeseries.Series, total),
	}
	for i := 0; i < total; i++ {
		series[0][i] = rng.NormFloat64()
		series[1][i] = 100 * math.Cos(float64(i)) // unrelated
	}
	model, err := Refit(sliceAll(series, 0, n), []int{0, 1})
	if err != nil {
		t.Fatalf("refit: %v", err)
	}
	if len(model.Dependents) != 0 {
		t.Fatalf("expected no dependents, got %d", len(model.Dependents))
	}
	roller, err := NewRoller(sliceAll(series, 0, n), model)
	if err != nil {
		t.Fatalf("roller: %v", err)
	}
	if err := roller.Roll(sliceAll(series, shift, shift+n), shift); err != nil {
		t.Fatalf("roll: %v", err)
	}
}

// TestRollerAllocFree proves the steady-state Roll performs zero heap
// allocations.
func TestRollerAllocFree(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	rng := rand.New(rand.NewSource(8))
	const nSeries, n, shift = 6, 50, 5
	total := n + shift*40
	series := rollerTrace(rng, nSeries, total)
	model, err := Search(sliceAll(series, 0, n), Config{Method: MethodCBC})
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	roller, err := NewRoller(sliceAll(series, 0, n), model)
	if err != nil {
		t.Fatalf("roller: %v", err)
	}
	win := make([]timeseries.Series, nSeries)
	off := 0
	allocs := testing.AllocsPerRun(20, func() {
		off += shift
		for i, s := range series {
			win[i] = s.Slice(off, off+n)
		}
		if err := roller.Roll(win, shift); err != nil {
			t.Fatalf("offset %d: roll: %v", off, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("roll allocates %.1f objects, want 0", allocs)
	}
}

// TestModelCloneDetaches checks Clone produces an independent copy.
func TestModelCloneDetaches(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	series := rollerTrace(rng, 5, 40)
	model, err := Search(series, Config{Method: MethodCBC})
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	clone := model.Clone()
	for idx, fit := range model.Dependents {
		got := clone.Dependents[idx]
		if got.Intercept != fit.Intercept || got.R2 != fit.R2 {
			t.Fatalf("dep %d: clone differs", idx)
		}
		fit.Intercept += 1
		if len(fit.Coef) > 0 {
			fit.Coef[0] += 1
		}
		if got.Intercept == fit.Intercept {
			t.Fatalf("dep %d: clone aliases intercept", idx)
		}
		if len(fit.Coef) > 0 && got.Coef[0] == fit.Coef[0] {
			t.Fatalf("dep %d: clone aliases coef", idx)
		}
	}
	model.Signatures[0] = -99
	if clone.Signatures[0] == -99 {
		t.Fatal("clone aliases signatures")
	}
}

// TestReconstructIntoMatches compares ReconstructInto with
// Reconstruct bit for bit and checks buffer reuse allocates nothing.
func TestReconstructIntoMatches(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	rng := rand.New(rand.NewSource(14))
	series := rollerTrace(rng, 6, 48)
	model, err := Search(series, Config{Method: MethodCBC})
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	h := 12
	sigValues := make([]timeseries.Series, len(model.Signatures))
	for i := range sigValues {
		s := make(timeseries.Series, h)
		for j := range s {
			s[j] = 10 + rng.NormFloat64()
		}
		sigValues[i] = s
	}
	want, err := model.Reconstruct(sigValues)
	if err != nil {
		t.Fatalf("reconstruct: %v", err)
	}
	dst := make([]timeseries.Series, model.N)
	for i := range dst {
		dst[i] = make(timeseries.Series, 0, h)
	}
	got, err := model.ReconstructInto(dst, sigValues)
	if err != nil {
		t.Fatalf("reconstruct into: %v", err)
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("series %d: len %d, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("series %d sample %d: %g, want %g", i, j, got[i][j], want[i][j])
			}
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := model.ReconstructInto(dst, sigValues); err != nil {
			t.Fatalf("reconstruct into: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("reconstruct into allocates %.1f objects, want 0", allocs)
	}
}
