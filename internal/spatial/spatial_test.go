package spatial

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"atm/internal/timeseries"
)

// boxSeries generates M*2 series for a synthetic box: groups of series
// driven by shared latent factors plus noise, mimicking co-located VM
// usage.
func boxSeries(seed int64, groups, perGroup, n int, noise float64) []timeseries.Series {
	r := rand.New(rand.NewSource(seed))
	factors := make([]timeseries.Series, groups)
	for g := range factors {
		f := make(timeseries.Series, n)
		phase := r.Float64() * 2 * math.Pi
		for i := range f {
			f[i] = 50 + 25*math.Sin(2*math.Pi*float64(i)/48+phase) + 3*r.NormFloat64()
		}
		factors[g] = f
	}
	var out []timeseries.Series
	for g := 0; g < groups; g++ {
		for k := 0; k < perGroup; k++ {
			s := make(timeseries.Series, n)
			a := 0.5 + r.Float64()
			b := r.Float64() * 10
			for i := range s {
				s[i] = b + a*factors[g][i] + noise*r.NormFloat64()
			}
			out = append(out, s)
		}
	}
	return out
}

func TestSearchCBCFindsGroups(t *testing.T) {
	series := boxSeries(1, 3, 4, 192, 1)
	m, err := Search(series, Config{Method: MethodCBC})
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if m.N != 12 {
		t.Errorf("N = %d, want 12", m.N)
	}
	if m.ClusterK < 2 || m.ClusterK > 6 {
		t.Errorf("ClusterK = %d, want near 3", m.ClusterK)
	}
	if len(m.Signatures) >= m.N {
		t.Errorf("no reduction: %d signatures of %d series", len(m.Signatures), m.N)
	}
	if len(m.Signatures)+len(m.Dependents) != m.N {
		t.Errorf("signatures %d + dependents %d != %d", len(m.Signatures), len(m.Dependents), m.N)
	}
	// Spatial fit must be accurate for factor-driven series.
	fitErr, err := m.FitError(series)
	if err != nil {
		t.Fatalf("FitError: %v", err)
	}
	if fitErr > 0.10 {
		t.Errorf("FitError = %v, want < 10%%", fitErr)
	}
}

func TestSearchDTWFindsGroups(t *testing.T) {
	series := boxSeries(2, 2, 4, 96, 0.5)
	m, err := Search(series, Config{Method: MethodDTW})
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(m.Signatures) >= m.N {
		t.Errorf("no reduction: %d of %d", len(m.Signatures), m.N)
	}
	fitErr, err := m.FitError(series)
	if err != nil {
		t.Fatalf("FitError: %v", err)
	}
	if fitErr > 0.25 {
		t.Errorf("FitError = %v, want < 25%%", fitErr)
	}
}

func TestSearchStepwiseShrinksOrKeeps(t *testing.T) {
	series := boxSeries(3, 3, 3, 144, 2)
	with, err := Search(series, Config{Method: MethodCBC})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Search(series, Config{Method: MethodCBC, SkipStepwise: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(with.Signatures) > len(without.Signatures) {
		t.Errorf("stepwise grew the signature set: %d > %d",
			len(with.Signatures), len(without.Signatures))
	}
	// Without stepwise the signatures equal the initial set.
	if len(without.Signatures) != len(without.InitialSignatures) {
		t.Errorf("SkipStepwise changed the set: %v vs %v",
			without.Signatures, without.InitialSignatures)
	}
}

func TestSearchErrors(t *testing.T) {
	if _, err := Search(nil, Config{}); !errors.Is(err, ErrNoSeries) {
		t.Errorf("err = %v, want ErrNoSeries", err)
	}
	if _, err := Search(boxSeries(4, 1, 2, 32, 1), Config{Method: Method(99)}); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestSearchSingleSeries(t *testing.T) {
	series := boxSeries(5, 1, 1, 64, 1)
	m, err := Search(series, Config{Method: MethodCBC})
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(m.Signatures) != 1 || m.Signatures[0] != 0 {
		t.Errorf("Signatures = %v, want [0]", m.Signatures)
	}
	if len(m.Dependents) != 0 {
		t.Errorf("Dependents = %v, want none", m.Dependents)
	}
	if got := m.Ratio(); got != 1 {
		t.Errorf("Ratio = %v, want 1", got)
	}
}

func TestMethodString(t *testing.T) {
	if MethodDTW.String() != "dtw" || MethodCBC.String() != "cbc" {
		t.Error("method names wrong")
	}
	if Method(9).String() == "" {
		t.Error("unknown method has empty name")
	}
}

func TestIsSignature(t *testing.T) {
	series := boxSeries(6, 2, 3, 96, 1)
	m, err := Search(series, Config{Method: MethodCBC})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for i := 0; i < m.N; i++ {
		if m.IsSignature(i) {
			count++
			if _, isDep := m.Dependents[i]; isDep {
				t.Errorf("series %d is both signature and dependent", i)
			}
		} else if _, isDep := m.Dependents[i]; !isDep {
			t.Errorf("series %d is neither signature nor dependent", i)
		}
	}
	if count != len(m.Signatures) {
		t.Errorf("IsSignature count %d != len(Signatures) %d", count, len(m.Signatures))
	}
}

func TestReconstruct(t *testing.T) {
	series := boxSeries(7, 2, 3, 96, 0.5)
	m, err := Search(series, Config{Method: MethodCBC})
	if err != nil {
		t.Fatal(err)
	}
	sigValues := make([]timeseries.Series, len(m.Signatures))
	for i, idx := range m.Signatures {
		sigValues[i] = series[idx]
	}
	out, err := m.Reconstruct(sigValues)
	if err != nil {
		t.Fatalf("Reconstruct: %v", err)
	}
	if len(out) != m.N {
		t.Fatalf("len(out) = %d, want %d", len(out), m.N)
	}
	// Signatures pass through verbatim.
	for i, idx := range m.Signatures {
		for j := range out[idx] {
			if out[idx][j] != sigValues[i][j] {
				t.Fatalf("signature %d modified", idx)
			}
		}
	}
	// Dependents approximate their originals.
	for idx := range m.Dependents {
		mape, err := timeseries.MAPE(series[idx], out[idx])
		if err != nil {
			t.Fatal(err)
		}
		if mape > 0.15 {
			t.Errorf("dependent %d reconstruction MAPE = %v", idx, mape)
		}
	}
}

func TestReconstructErrors(t *testing.T) {
	series := boxSeries(8, 2, 2, 64, 1)
	m, err := Search(series, Config{Method: MethodCBC})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Reconstruct(nil); err == nil && len(m.Signatures) > 0 {
		t.Error("wrong signature count accepted")
	}
	if len(m.Signatures) >= 2 {
		vals := make([]timeseries.Series, len(m.Signatures))
		for i := range vals {
			vals[i] = make(timeseries.Series, 10)
		}
		vals[1] = make(timeseries.Series, 5)
		if _, err := m.Reconstruct(vals); !errors.Is(err, timeseries.ErrLengthMismatch) {
			t.Errorf("err = %v, want ErrLengthMismatch", err)
		}
	}
}

func TestFittedLengthCheck(t *testing.T) {
	series := boxSeries(9, 1, 3, 64, 1)
	m, err := Search(series, Config{Method: MethodCBC})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Fitted(series[:1]); err == nil {
		t.Error("wrong series count accepted")
	}
}

func TestRatioMatchesCounts(t *testing.T) {
	series := boxSeries(10, 3, 4, 96, 1)
	for _, method := range []Method{MethodDTW, MethodCBC} {
		m, err := Search(series, Config{Method: method})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		want := float64(len(m.Signatures)) / float64(m.N)
		if got := m.Ratio(); got != want {
			t.Errorf("%v Ratio = %v, want %v", method, got, want)
		}
	}
}

func TestSearchFeaturesMethod(t *testing.T) {
	series := boxSeries(12, 3, 4, 96, 1)
	m, err := Search(series, Config{Method: MethodFeatures, Period: 48})
	if err != nil {
		t.Fatalf("Search(features): %v", err)
	}
	if len(m.Signatures) == 0 || len(m.Signatures) > m.N {
		t.Errorf("signatures = %v", m.Signatures)
	}
	if len(m.Signatures)+len(m.Dependents) != m.N {
		t.Errorf("partition broken: %d + %d != %d", len(m.Signatures), len(m.Dependents), m.N)
	}
	if MethodFeatures.String() != "features" {
		t.Errorf("String = %q", MethodFeatures.String())
	}
}

func TestRefitMatchesSearch(t *testing.T) {
	series := boxSeries(9, 3, 4, 192, 1)
	m, err := Search(series, Config{Method: MethodCBC})
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	// Refitting the same series over the searched signature set must
	// reproduce the search's dependent fits bit for bit (Refit shares
	// fitDependents with Search).
	rm, err := Refit(series, m.Signatures)
	if err != nil {
		t.Fatalf("Refit: %v", err)
	}
	if rm.N != m.N || len(rm.Signatures) != len(m.Signatures) {
		t.Fatalf("refit shape: N=%d sigs=%d, want N=%d sigs=%d",
			rm.N, len(rm.Signatures), m.N, len(m.Signatures))
	}
	if len(rm.Dependents) != len(m.Dependents) {
		t.Fatalf("dependents: %d vs %d", len(rm.Dependents), len(m.Dependents))
	}
	for i, f := range m.Dependents {
		rf, ok := rm.Dependents[i]
		if !ok {
			t.Fatalf("dependent %d missing from refit", i)
		}
		if len(rf.Coef) != len(f.Coef) {
			t.Fatalf("dependent %d: %d coefs vs %d", i, len(rf.Coef), len(f.Coef))
		}
		for j := range f.Coef {
			if rf.Coef[j] != f.Coef[j] {
				t.Errorf("dependent %d coef %d: %v != %v", i, j, rf.Coef[j], f.Coef[j])
			}
		}
		if rf.R2 != f.R2 {
			t.Errorf("dependent %d R2: %v != %v", i, rf.R2, f.R2)
		}
	}
}

func TestRefitErrors(t *testing.T) {
	series := boxSeries(9, 2, 3, 96, 1)
	if _, err := Refit(series, nil); err == nil {
		t.Error("empty signatures accepted")
	}
	if _, err := Refit(series, []int{0, 99}); err == nil {
		t.Error("out-of-range signature accepted")
	}
	// Unsorted input is normalized, not rejected.
	if m, err := Refit(series, []int{2, 1}); err != nil {
		t.Errorf("unsorted signatures: %v", err)
	} else if m.Signatures[0] != 1 || m.Signatures[1] != 2 {
		t.Errorf("signatures not normalized: %v", m.Signatures)
	}
	if _, err := Refit(series, []int{1, 1}); err == nil {
		t.Error("duplicate signatures accepted")
	}
	if _, err := Refit(nil, []int{0}); err == nil {
		t.Error("no series accepted")
	}
}
