// Package spatial implements ATM's central contribution: the
// signature-series search and the spatial prediction models (paper
// Section III). Given the M×N demand series of one physical box (M
// co-located VMs × N resources), it selects a small signature subset
// Ωs via time-series clustering (DTW or CBC) followed by VIF-driven
// stepwise regression, and fits every remaining dependent series in Ωd
// as a linear combination of the signatures (Eq. 1). Predicting the box
// then only requires running an expensive temporal model on the
// signatures; dependents follow by inexpensive linear transforms.
package spatial

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"atm/internal/cluster"
	"atm/internal/obs"
	"atm/internal/regress"
	"atm/internal/timeseries"
)

// Method selects the step-1 clustering technique.
type Method int

// Clustering methods for the signature search.
const (
	// MethodDTW clusters by dynamic-time-warping distance with
	// silhouette-selected hierarchical clustering.
	MethodDTW Method = iota
	// MethodCBC clusters by the paper's correlation-based scheme.
	MethodCBC
	// MethodFeatures clusters by k-means over extracted series
	// features (moments, autocorrelations, trend/seasonal strengths) —
	// the feature-based route the paper cites as the alternative to
	// operating on raw series.
	MethodFeatures
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodDTW:
		return "dtw"
	case MethodCBC:
		return "cbc"
	case MethodFeatures:
		return "features"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Config parameterizes the signature search. The zero value selects
// DTW with the paper's defaults.
type Config struct {
	// Method is the step-1 clustering technique.
	Method Method
	// RhoTh is the CBC correlation threshold; 0 means
	// cluster.DefaultRhoTh (0.7).
	RhoTh float64
	// VIFCutoff is the step-2 multicollinearity threshold; 0 means
	// regress.DefaultVIFCutoff (4).
	VIFCutoff float64
	// DTWWindow is the Sakoe-Chiba half-width for DTW; 0 means
	// unconstrained (the paper's formulation).
	DTWWindow int
	// DTWApprox selects the LB_Keogh-pruned distance matrix
	// (cluster.DTWSearchApprox) for MethodDTW: far pairs keep an
	// admissible lower bound instead of the exact distance, roughly
	// halving the quadratic DTW work. Exact by default.
	DTWApprox bool
	// Period is the seasonal period in samples, used by
	// MethodFeatures for its seasonal features (0 disables them).
	Period int
	// SkipStepwise disables step 2, leaving the clustering-only
	// signature set. Used by the paper's Figure 6 ablation.
	SkipStepwise bool
	// Envelopes, when non-nil, carries series normalizations and
	// LB_Keogh envelopes across successive searches over rolled
	// windows of the same box (MethodDTW with DTWApprox only).
	// Results are bit-identical with or without it; the bank is
	// stateful and must not be shared between boxes or concurrent
	// searches.
	Envelopes *cluster.EnvelopeBank
}

func (c Config) rhoTh() float64 {
	if c.RhoTh == 0 {
		return cluster.DefaultRhoTh
	}
	return c.RhoTh
}

func (c Config) vifCutoff() float64 {
	if c.VIFCutoff == 0 {
		return regress.DefaultVIFCutoff
	}
	return c.VIFCutoff
}

func (c Config) dtwWindow() int {
	if c.DTWWindow == 0 {
		return -1
	}
	return c.DTWWindow
}

// Model is a fitted spatial model for one box: the signature subset and
// one linear fit per dependent series.
type Model struct {
	// N is the total number of series the model was built from.
	N int
	// ClusterK is the number of clusters found by step 1.
	ClusterK int
	// InitialSignatures is the step-1 signature set (one medoid or
	// top-ranked series per cluster), in increasing index order.
	InitialSignatures []int
	// Signatures is the final signature set after step 2 (or the
	// initial set when stepwise was skipped), in increasing index
	// order.
	Signatures []int
	// Dependents maps each dependent series index to its linear fit on
	// the signature series (predictors in Signatures order).
	Dependents map[int]*regress.Fit
}

// Clone returns a deep copy of the model. Rolling pipelines mutate
// their live model's fits in place (spatial.Roller), so retained
// results snapshot via Clone.
func (m *Model) Clone() *Model {
	out := &Model{
		N:                 m.N,
		ClusterK:          m.ClusterK,
		InitialSignatures: append([]int(nil), m.InitialSignatures...),
		Signatures:        append([]int(nil), m.Signatures...),
	}
	if m.Dependents != nil {
		out.Dependents = make(map[int]*regress.Fit, len(m.Dependents))
		for idx, fit := range m.Dependents {
			out.Dependents[idx] = &regress.Fit{
				Intercept: fit.Intercept,
				Coef:      append([]float64(nil), fit.Coef...),
				R2:        fit.R2,
			}
		}
	}
	return out
}

// ErrNoSeries indicates Search was called without any series.
var ErrNoSeries = errors.New("spatial: no series")

// Search runs the two-step signature-set search on the box's series and
// fits the spatial models of every dependent series (paper Fig. 4).
func Search(series []timeseries.Series, cfg Config) (*Model, error) {
	return SearchContext(context.Background(), series, cfg)
}

// SearchContext is Search with tracing: when the context carries an
// obs.Tracer, the search emits a "spatial.search" span with child
// spans for the clustering step, the stepwise VIF elimination, and the
// dependent fits. Without a tracer it behaves exactly like Search.
func SearchContext(ctx context.Context, series []timeseries.Series, cfg Config) (_ *Model, err error) {
	n := len(series)
	if n == 0 {
		return nil, ErrNoSeries
	}
	ctx, span := obs.StartSpan(ctx, "spatial.search")
	defer span.End()
	span.SetAttr("series", n)
	span.SetAttr("method", cfg.Method.String())

	// Step 1: time series clustering.
	var res cluster.Result
	_, cspan := obs.StartSpan(ctx, "spatial.cluster")
	switch cfg.Method {
	case MethodDTW:
		if cfg.DTWApprox {
			if cfg.Envelopes != nil {
				res, err = cluster.DTWSearchApprox(series, cfg.dtwWindow(), 0,
					cluster.WithEnvelopeBank(cfg.Envelopes))
			} else {
				res, err = cluster.DTWSearchApprox(series, cfg.dtwWindow(), 0)
			}
		} else {
			res, err = cluster.DTWSearch(series, cfg.dtwWindow())
		}
	case MethodCBC:
		res, err = cluster.CBC(series, cfg.rhoTh())
	case MethodFeatures:
		res, err = cluster.FeatureSearch(series, cfg.Period)
	default:
		cspan.End()
		return nil, fmt.Errorf("spatial: unknown method %v", cfg.Method)
	}
	cspan.SetAttr("clusters", res.K)
	cspan.End()
	if err != nil {
		return nil, fmt.Errorf("spatial: step-1 clustering: %w", err)
	}

	m := &Model{
		N:                 n,
		ClusterK:          res.K,
		InitialSignatures: append([]int(nil), res.Signatures...),
	}

	// Step 2: multicollinearity removal via VIF + stepwise regression.
	final := append([]int(nil), res.Signatures...)
	if !cfg.SkipStepwise && len(final) >= 2 {
		_, sspan := obs.StartSpan(ctx, "spatial.stepwise_vif")
		sigSeries := make([]timeseries.Series, len(final))
		for i, idx := range final {
			sigSeries[i] = series[idx]
		}
		keep, removed, err := regress.StepwiseVIF(sigSeries, cfg.vifCutoff())
		sspan.SetAttr("eliminated", len(removed))
		sspan.End()
		if err != nil {
			return nil, fmt.Errorf("spatial: step-2 stepwise: %w", err)
		}
		reduced := make([]int, len(keep))
		for i, k := range keep {
			reduced[i] = final[k]
		}
		final = reduced
	}
	sort.Ints(final)
	m.Signatures = final
	span.SetAttr("signatures", len(final))

	// Fit every dependent on the final signature set.
	m.Dependents, err = fitDependents(ctx, series, final)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// fitDependents fits every non-signature series as a linear model of
// the signature series (indices in final). All dependents share one
// predictor set, so the design matrix is built and QR-factored once
// through a Designer; each dependent costs one solve. The fits are
// bit-identical to per-dependent OLSRidge calls. Shared by the full
// Search and by Refit, so a refit reproduces exactly the fits a fresh
// search over the same signature set would produce.
func fitDependents(ctx context.Context, series []timeseries.Series, final []int) (map[int]*regress.Fit, error) {
	_, fspan := obs.StartSpan(ctx, "spatial.fit_dependents")
	defer fspan.End()
	sigSeries := make([]timeseries.Series, len(final))
	isSig := make(map[int]bool, len(final))
	for i, idx := range final {
		sigSeries[i] = series[idx]
		isSig[idx] = true
	}
	deps := make(map[int]*regress.Fit)
	var designer *regress.Designer
	var err error
	for i := 0; i < len(series); i++ {
		if isSig[i] {
			continue
		}
		if designer == nil {
			designer, err = regress.NewDesigner(sigSeries)
			if err != nil {
				return nil, fmt.Errorf("spatial: fit dependent %d: %w", i, err)
			}
		}
		fit, err := designer.FitRidge(series[i], regress.DefaultRidgeLambda)
		if err != nil {
			return nil, fmt.Errorf("spatial: fit dependent %d: %w", i, err)
		}
		deps[i] = fit
	}
	fspan.SetAttr("dependents", len(deps))
	return deps, nil
}

// Refit rebuilds a spatial model over a new window of the same box
// with a fixed, previously-searched signature set: the expensive
// clustering and stepwise-VIF steps are skipped and only the cheap
// dependent OLS fits are recomputed. This is the model-reuse fast
// path of rolling/streaming runs — a full Search is only needed again
// when drift invalidates the signature set.
func Refit(series []timeseries.Series, signatures []int) (*Model, error) {
	return RefitContext(context.Background(), series, signatures)
}

// RefitContext is Refit with tracing: under an obs.Tracer it emits a
// "spatial.refit" span wrapping the dependent fits.
func RefitContext(ctx context.Context, series []timeseries.Series, signatures []int) (*Model, error) {
	n := len(series)
	if n == 0 {
		return nil, ErrNoSeries
	}
	if len(signatures) == 0 {
		return nil, fmt.Errorf("spatial: refit with empty signature set")
	}
	final := append([]int(nil), signatures...)
	sort.Ints(final)
	for i, idx := range final {
		if idx < 0 || idx >= n {
			return nil, fmt.Errorf("spatial: refit signature %d out of range [0,%d)", idx, n)
		}
		if i > 0 && final[i-1] == idx {
			return nil, fmt.Errorf("spatial: refit signature %d duplicated", idx)
		}
	}
	ctx, span := obs.StartSpan(ctx, "spatial.refit")
	defer span.End()
	span.SetAttr("series", n)
	span.SetAttr("signatures", len(final))
	m := &Model{
		N:                 n,
		ClusterK:          len(final),
		InitialSignatures: append([]int(nil), final...),
		Signatures:        final,
	}
	var err error
	m.Dependents, err = fitDependents(ctx, series, final)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// Ratio returns the signature-set size as a fraction of all series —
// the paper's "percent of signature series out of the total demand
// series" metric (Figures 6a, 7a).
func (m *Model) Ratio() float64 {
	if m.N == 0 {
		return 0
	}
	return float64(len(m.Signatures)) / float64(m.N)
}

// IsSignature reports whether series index i is in the final signature
// set.
func (m *Model) IsSignature(i int) bool {
	j := sort.SearchInts(m.Signatures, i)
	return j < len(m.Signatures) && m.Signatures[j] == i
}

// Reconstruct produces a full set of N series given values for the
// signature series (in Signatures order): signatures pass through
// verbatim, dependents are computed from their linear fits. This is
// how ATM turns temporal forecasts of the few signatures into
// forecasts for every series on the box.
func (m *Model) Reconstruct(sigValues []timeseries.Series) ([]timeseries.Series, error) {
	if len(sigValues) != len(m.Signatures) {
		return nil, fmt.Errorf("spatial: %d signature series given, model has %d",
			len(sigValues), len(m.Signatures))
	}
	horizon := 0
	for i, s := range sigValues {
		if i == 0 {
			horizon = len(s)
		} else if len(s) != horizon {
			return nil, fmt.Errorf("spatial: signature %d has %d samples, want %d: %w",
				i, len(s), horizon, timeseries.ErrLengthMismatch)
		}
	}
	out := make([]timeseries.Series, m.N)
	for i, idx := range m.Signatures {
		out[idx] = sigValues[i].Clone()
	}
	for idx, fit := range m.Dependents {
		out[idx] = fit.Apply(sigValues)
	}
	return out, nil
}

// ReconstructInto is Reconstruct writing into dst, which must hold
// m.N series headers; each is length-adjusted via append, so callers
// providing headers with enough capacity get the same values as
// Reconstruct with zero heap allocations.
func (m *Model) ReconstructInto(dst, sigValues []timeseries.Series) ([]timeseries.Series, error) {
	if len(sigValues) != len(m.Signatures) {
		return nil, fmt.Errorf("spatial: %d signature series given, model has %d",
			len(sigValues), len(m.Signatures))
	}
	if len(dst) != m.N {
		return nil, fmt.Errorf("spatial: reconstruct into %d series, model has %d", len(dst), m.N)
	}
	horizon := 0
	for i, s := range sigValues {
		if i == 0 {
			horizon = len(s)
		} else if len(s) != horizon {
			return nil, fmt.Errorf("spatial: signature %d has %d samples, want %d: %w",
				i, len(s), horizon, timeseries.ErrLengthMismatch)
		}
	}
	for i, idx := range m.Signatures {
		dst[idx] = append(dst[idx][:0], sigValues[i]...)
	}
	for idx, fit := range m.Dependents {
		dst[idx] = fit.ApplyInto(dst[idx][:0], sigValues)
	}
	return dst, nil
}

// Fitted returns the in-sample fitted values for every series: the
// original values for signatures and the linear-model fits for
// dependents. It is the quantity behind the paper's "effectiveness of
// spatial models" APE numbers (Figure 6b), which exclude temporal
// prediction error.
func (m *Model) Fitted(series []timeseries.Series) ([]timeseries.Series, error) {
	if len(series) != m.N {
		return nil, fmt.Errorf("spatial: %d series given, model built on %d", len(series), m.N)
	}
	sigValues := make([]timeseries.Series, len(m.Signatures))
	for i, idx := range m.Signatures {
		sigValues[i] = series[idx]
	}
	return m.Reconstruct(sigValues)
}

// FitError returns the mean APE of the spatial fit across all
// dependent series of the box (signatures fit exactly and are
// excluded). A box whose every series is a signature has error 0.
func (m *Model) FitError(series []timeseries.Series) (float64, error) {
	fitted, err := m.Fitted(series)
	if err != nil {
		return 0, err
	}
	var sum float64
	n := 0
	for idx := range m.Dependents {
		e, err := timeseries.MAPE(series[idx], fitted[idx])
		if err != nil {
			return 0, err
		}
		sum += e
		n++
	}
	if n == 0 {
		return 0, nil
	}
	return sum / float64(n), nil
}
