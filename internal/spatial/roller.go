package spatial

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"atm/internal/regress"
	"atm/internal/timeseries"
)

// ErrNotRolled indicates the window handed to Roller.Roll is not a
// pure roll of the previous window (the overlap samples differ), so
// the incremental update would be incorrect and the caller must take
// the from-scratch reference path.
var ErrNotRolled = errors.New("spatial: window is not a roll of the previous window")

// rollerBuildTol bounds how far the incremental normal-equation fit
// may sit from the reference QR fit at Roller construction; beyond it
// the window is too ill-conditioned for the incremental path and the
// builder rejects it.
const rollerBuildTol = 1e-6

// Roller maintains a spatial model incrementally across rolled
// windows. It adopts a reference-fitted Model (whose window-0 fits
// stay exactly as the reference produced them) and, per Roll, feeds
// the samples that left/entered the window through a
// regress.RollingDesigner — O(p²) per rolled sample — then rewrites
// every dependent fit in place at O(p²) per target, instead of the
// reference Refit's O(n·p²) design rebuild.
//
// The Roller owns private copies of the current window, so callers may
// hand it zero-copy views into live buffers: Roll verifies by value
// that the claimed overlap really is one before touching any
// accumulator, and any mismatch (or numerical breakdown in the
// designer) surfaces as an error the caller resolves by falling back
// to the reference path and rebuilding.
type Roller struct {
	model  *Model
	depIdx []int // sorted dependent indices, FitInto target order
	rd     *regress.RollingDesigner
	n      int

	prevSig []timeseries.Series // owned copies, Signatures order
	prevDep []timeseries.Series // owned copies, depIdx order
	newSig  []timeseries.Series // per-Roll view scratch
	newDep  []timeseries.Series
}

// NewRoller builds the incremental state from the model's training
// window. model must have been fitted (Search or Refit) on exactly
// these series; the builder cross-checks the incremental fit of every
// dependent against the model's reference fit and rejects windows
// where they diverge beyond 1e-6 (ill-conditioning the rank-1 path
// cannot track). The adopted model is mutated in place by later Rolls.
func NewRoller(series []timeseries.Series, model *Model) (*Roller, error) {
	if model.N != len(series) {
		return nil, fmt.Errorf("spatial: roller over %d series, model built on %d", len(series), model.N)
	}
	if len(model.Signatures) == 0 {
		return nil, fmt.Errorf("spatial: roller with empty signature set")
	}
	n := len(series[0])
	for i, s := range series {
		if len(s) != n {
			return nil, fmt.Errorf("spatial: series %d has %d samples, want %d: %w",
				i, len(s), n, timeseries.ErrLengthMismatch)
		}
	}
	depIdx := make([]int, 0, len(model.Dependents))
	for idx := range model.Dependents {
		depIdx = append(depIdx, idx)
	}
	sort.Ints(depIdx)

	r := &Roller{
		model:   model,
		depIdx:  depIdx,
		n:       n,
		prevSig: make([]timeseries.Series, len(model.Signatures)),
		prevDep: make([]timeseries.Series, len(depIdx)),
		newSig:  make([]timeseries.Series, len(model.Signatures)),
		newDep:  make([]timeseries.Series, len(depIdx)),
	}
	for i, idx := range model.Signatures {
		r.prevSig[i] = series[idx].Clone()
	}
	for i, idx := range depIdx {
		r.prevDep[i] = series[idx].Clone()
	}
	rd, err := regress.NewRollingDesigner(r.prevSig, r.prevDep)
	if err != nil {
		return nil, fmt.Errorf("spatial: roller build: %w", err)
	}
	// Guard: the incremental solve must land on the reference fit for
	// the build window, or the window is too ill-conditioned to track.
	var scratch regress.Fit
	for t, idx := range depIdx {
		if err := rd.FitInto(t, &scratch); err != nil {
			return nil, fmt.Errorf("spatial: roller build fit %d: %w", idx, err)
		}
		ref := model.Dependents[idx]
		if ref == nil || len(ref.Coef) != len(scratch.Coef) {
			return nil, fmt.Errorf("spatial: roller: model has no fit for dependent %d", idx)
		}
		if !fitClose(&scratch, ref, rollerBuildTol) {
			return nil, fmt.Errorf("spatial: roller build: incremental fit for dependent %d diverges from reference", idx)
		}
	}
	r.rd = rd
	return r, nil
}

// fitClose reports whether two fits agree within tol, scaled by
// coefficient magnitude.
func fitClose(a, b *regress.Fit, tol float64) bool {
	close := func(x, y float64) bool {
		return math.Abs(x-y) <= tol*math.Max(1, math.Abs(y))
	}
	if !close(a.Intercept, b.Intercept) || !close(a.R2, b.R2) {
		return false
	}
	for j := range b.Coef {
		if !close(a.Coef[j], b.Coef[j]) {
			return false
		}
	}
	return true
}

// Model returns the adopted model (live: mutated by Roll).
func (r *Roller) Model() *Model { return r.model }

// Roll advances the model to a window shifted forward by shift
// samples and refits every dependent incrementally, mutating the
// adopted model's fits in place. series must be the full series set
// of the new window, in the same order the model was built on.
//
// The overlap (previous window from shift on, new window up to
// n−shift) is compared by value against the Roller's private copies
// before any state changes; a mismatch returns ErrNotRolled with all
// state intact. An update/downdate breakdown mid-roll returns
// regress.ErrRollingBroken and leaves the Roller unusable — the
// caller rebuilds from the reference path. Steady-state Rolls perform
// zero heap allocations.
func (r *Roller) Roll(series []timeseries.Series, shift int) error {
	if len(series) != r.model.N {
		return fmt.Errorf("spatial: roll over %d series, model built on %d", len(series), r.model.N)
	}
	if shift <= 0 || shift >= r.n {
		return fmt.Errorf("%w: shift %d of window %d", ErrNotRolled, shift, r.n)
	}
	for i, s := range series {
		if len(s) != r.n {
			return fmt.Errorf("spatial: roll series %d has %d samples, want %d: %w",
				i, len(s), r.n, timeseries.ErrLengthMismatch)
		}
	}
	for i, idx := range r.model.Signatures {
		if !overlapEqual(r.prevSig[i], series[idx], shift) {
			return fmt.Errorf("%w: signature series %d overlap differs", ErrNotRolled, idx)
		}
		r.newSig[i] = series[idx]
	}
	for i, idx := range r.depIdx {
		if !overlapEqual(r.prevDep[i], series[idx], shift) {
			return fmt.Errorf("%w: dependent series %d overlap differs", ErrNotRolled, idx)
		}
		r.newDep[i] = series[idx]
	}
	for s := 0; s < shift; s++ {
		err := r.rd.Roll(r.prevSig, r.prevDep, s, r.newSig, r.newDep, r.n-shift+s)
		if err != nil {
			return err
		}
	}
	for t, idx := range r.depIdx {
		if err := r.rd.FitInto(t, r.model.Dependents[idx]); err != nil {
			return err
		}
	}
	for i := range r.prevSig {
		copy(r.prevSig[i], r.newSig[i])
		r.newSig[i] = nil
	}
	for i := range r.prevDep {
		copy(r.prevDep[i], r.newDep[i])
		r.newDep[i] = nil
	}
	return nil
}

// overlapEqual reports whether cur really is prev rolled forward by
// shift: prev[shift:] must equal cur[:n−shift] exactly.
func overlapEqual(prev, cur timeseries.Series, shift int) bool {
	n := len(prev)
	for i := shift; i < n; i++ {
		if prev[i] != cur[i-shift] {
			return false
		}
	}
	return true
}
