package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"atm/internal/actuator"
	"atm/internal/actuator/policy"
	"atm/internal/core"
	"atm/internal/engine"
	"atm/internal/predict"
	"atm/internal/spatial"
)

// whatIfService builds a dry-run service over a counting registry
// backend with a CPU clamp rail, so the whatif route has a backend to
// read and rails to report.
func whatIfService(t *testing.T, maxCPU float64) (*Service, *actuator.CountingBackend) {
	t.Helper()
	spd := 8
	reg := actuator.NewRegistry()
	cb := actuator.NewCountingBackend(reg)
	cfg := engine.Config{
		Core: core.Config{
			Spatial:      spatial.Config{Method: spatial.MethodCBC},
			Temporal:     func() predict.Model { return &predict.SeasonalNaive{Period: spd} },
			TrainWindows: 2 * spd,
			Horizon:      spd,
			Threshold:    0.6,
			Epsilon:      0.1,
			Degraded:     true,
		},
		SamplesPerDay: spd,
		Backend:       cb,
		Policy:        &policy.Config{Rules: []policy.Rule{{Match: "*", MaxCPUGHz: maxCPU}}},
		DryRun:        true,
	}
	svc, err := New(Config{
		History: 2 * (cfg.Core.TrainWindows + cfg.Core.Horizon),
		Shards:  3,
		Engine:  cfg,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return svc, cb
}

func getPath(t *testing.T, h http.Handler, path string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w, w.Body.Bytes()
}

// TestWhatIfRoute drives a box to its first plan under -dry-run and
// asks the whatif route what applying it would do: one row per VM,
// clamp violations surfaced, and — the point of dry runs — zero writes
// on the backend from ingest through whatif response.
func TestWhatIfRoute(t *testing.T) {
	const maxCPU = 0.5
	svc, cb := whatIfService(t, maxCPU)
	const vms = 2
	m := boxMeta("b1", vms)
	need := svc.Engine().Need(0)
	if w, body := postJSON(t, svc.IngestHandler(), "/v1/ingest", BatchRequest{Boxes: []BatchEntry{
		{ID: "b1", Box: &m, Samples: ticks(vms, need, 50)},
	}}); w.Code != http.StatusOK {
		t.Fatalf("ingest status %d: %s", w.Code, body)
	}
	svc.Engine().Sync(context.Background())
	plan, ok := svc.Engine().Plan("b1")
	if !ok {
		t.Fatal("no plan after ingest + sync")
	}

	w, body := getPath(t, svc.Handler(), "/v1/boxes/b1/whatif")
	if w.Code != http.StatusOK {
		t.Fatalf("whatif status %d: %s", w.Code, body)
	}
	var wp policy.Plan
	if err := json.Unmarshal(body, &wp); err != nil {
		t.Fatalf("decode whatif: %v\n%s", err, body)
	}
	if wp.Box != "b1" || wp.Backend.Name != "registry" || wp.Mode != policy.ModeClamp {
		t.Fatalf("plan header = box %q backend %q mode %q", wp.Box, wp.Backend.Name, wp.Mode)
	}
	if len(wp.Rows) != vms || wp.Writes != vms || wp.Rejects != 0 {
		t.Fatalf("rows=%d writes=%d rejects=%d, want %d/%d/0", len(wp.Rows), wp.Writes, wp.Rejects, vms, vms)
	}
	for i, row := range wp.Rows {
		if row.VM != m.VMs[i].ID {
			t.Errorf("row %d: vm %q, want %q", i, row.VM, m.VMs[i].ID)
		}
		// Nothing was ever written (dry-run), so every group is a create.
		if row.Action != policy.ActionCreate || row.Current != nil {
			t.Errorf("row %d: action %q current %v, want create of a fresh group", i, row.Action, row.Current)
		}
		if row.Applied.CPUGHz > maxCPU {
			t.Errorf("row %d: applied cpu %v exceeds rail %v", i, row.Applied.CPUGHz, maxCPU)
		}
		if plan.CPUSizes[i] > maxCPU && len(row.Violations) == 0 {
			t.Errorf("row %d: clamped write reported no violations", i)
		}
	}
	if n := cb.Writes(); n != 0 {
		t.Fatalf("backend saw %d writes across ingest+whatif, want 0", n)
	}
	if cb.Reads() == 0 {
		t.Fatal("whatif issued no reads — did it consult the backend?")
	}
}

// TestWhatIfRouteErrors pins the route's failure modes: no backend
// configured, unknown box, no plan yet, wrong method.
func TestWhatIfRouteErrors(t *testing.T) {
	// A plain service (no Backend) must refuse with 409.
	plain := testService(t, 0)
	if w, body := getPath(t, plain.Handler(), "/v1/boxes/b1/whatif"); w.Code != http.StatusConflict {
		t.Errorf("no-backend whatif status %d: %s", w.Code, body)
	}

	svc, _ := whatIfService(t, 0.5)
	h := svc.Handler()
	if w, _ := getPath(t, h, "/v1/boxes/ghost/whatif"); w.Code != http.StatusNotFound {
		t.Errorf("unknown box status %d", w.Code)
	}
	// Registered but not enough samples for a plan.
	m := boxMeta("b2", 1)
	if w, body := postJSON(t, svc.IngestHandler(), "/v1/ingest", BatchRequest{Boxes: []BatchEntry{
		{ID: "b2", Box: &m, Samples: ticks(1, 1, 5)},
	}}); w.Code != http.StatusOK {
		t.Fatalf("ingest status %d: %s", w.Code, body)
	}
	if w, _ := getPath(t, h, "/v1/boxes/b2/whatif"); w.Code != http.StatusNotFound {
		t.Errorf("plan-less box status %d", w.Code)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/boxes/b2/whatif", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST whatif status %d", rec.Code)
	}
}
