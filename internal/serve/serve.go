// Package serve implements the streaming ATM HTTP service: a sharded
// state store fed by the ingestion API, the scheduling engine
// re-planning each box as samples stream in, and the handlers that
// expose both over the daemon's mux. It lives outside cmd/atmd so the
// load harness (cmd/atmload -selftest) and the loadsmoke CI target can
// boot the exact production service in-process.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"atm/internal/actuator/policy"
	"atm/internal/engine"
	"atm/internal/obs"
	"atm/internal/state"
)

// DefaultMaxBody caps ingest request bodies at 8 MiB — generous for a
// day of samples across a large batch, small enough that a misbehaving
// client cannot balloon the daemon's heap.
const DefaultMaxBody = 8 << 20

// DefaultSpanRing is the capacity of the in-memory span ring that
// backs the per-box debug endpoint's trace lookup.
const DefaultSpanRing = 4096

var (
	// ingestBatchSize tracks how many box entries each /v1/ingest body
	// carries: the knob the load generator turns to trade request
	// overhead against body size. Count buckets, not latency buckets.
	ingestBatchSize = obs.Default().Histogram(
		"atm_ingest_batch_size",
		"Box entries per /v1/ingest request body.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024})
	// planLatency times plan serving alone — the route the paper's
	// operators poll, so its tail must stay visible separately from the
	// shared /v1/boxes/:id route histogram that also covers ingest.
	planLatency = obs.Default().Histogram(
		"atm_plan_serve_seconds",
		"Latency of GET /v1/boxes/{id}/plan responses in seconds.",
		nil)
)

// Config assembles a Service.
type Config struct {
	// History is the samples retained per series.
	History int
	// Shards is the state-store shard count; 0 selects
	// state.DefaultShards.
	Shards int
	// Engine is passed through to engine.New.
	Engine engine.Config
	// MaxBody caps ingestion request bodies in bytes; 0 selects
	// DefaultMaxBody, negative disables the cap.
	MaxBody int64
	// Events, when non-nil, is the decision event log the engine
	// publishes to; nil builds a fresh obs.DefaultEventCap log. Either
	// way GET /v1/events serves its tail.
	Events *obs.EventLog
	// SpanExporters are extra span sinks (e.g. a durable
	// obs.FileSpanExporter) attached after the service's in-memory
	// ring.
	SpanExporters []obs.Exporter
	// SpanRing is the in-memory span ring capacity backing the debug
	// endpoint's trace lookup; 0 selects DefaultSpanRing.
	SpanRing int
}

// Service bundles the streaming ATM stack: the state store fed by the
// ingestion API, the engine scheduling rolling pipeline steps over it,
// and the engine's lifecycle (cancel + done) for graceful drain.
type Service struct {
	store   *state.Store
	engine  *engine.Engine
	maxBody int64

	// Observability plane: the tracer spans every ingest request and
	// engine step into the ring (plus any configured durable
	// exporters); the event log carries the engine's typed decisions.
	tracer *obs.Tracer
	ring   *obs.RingExporter
	events *obs.EventLog

	started  atomic.Bool // Start called
	draining atomic.Bool // BeginDrain/Drain called

	cancel context.CancelFunc
	done   chan struct{}
}

// New builds the store and engine; the engine loop is not started yet
// (call Start, or drive Engine().Sync directly in tests).
func New(cfg Config) (*Service, error) {
	shards := cfg.Shards
	if shards == 0 {
		shards = state.DefaultShards
	}
	st, err := state.NewStoreSharded(cfg.History, shards)
	if err != nil {
		return nil, err
	}
	spanRing := cfg.SpanRing
	if spanRing <= 0 {
		spanRing = DefaultSpanRing
	}
	ring := obs.NewRingExporter(spanRing)
	tracer := obs.NewTracer(append([]obs.Exporter{ring}, cfg.SpanExporters...)...)
	events := cfg.Events
	if events == nil {
		events = obs.NewEventLog(obs.DefaultEventCap)
	}
	// Wire the engine into the same plane unless the caller brought
	// their own (tests that assert on a private tracer/log).
	if cfg.Engine.Tracer == nil {
		cfg.Engine.Tracer = tracer
	} else {
		tracer = cfg.Engine.Tracer
	}
	if cfg.Engine.Events == nil {
		cfg.Engine.Events = events
	} else {
		events = cfg.Engine.Events
	}
	eng, err := engine.New(st, cfg.Engine)
	if err != nil {
		return nil, err
	}
	maxBody := cfg.MaxBody
	if maxBody == 0 {
		maxBody = DefaultMaxBody
	}
	return &Service{
		store: st, engine: eng, maxBody: maxBody,
		tracer: tracer, ring: ring, events: events,
	}, nil
}

// Store exposes the service's state store (tests, in-process harness).
func (s *Service) Store() *state.Store { return s.store }

// Engine exposes the service's scheduling engine.
func (s *Service) Engine() *engine.Engine { return s.engine }

// Start launches the engine loop.
func (s *Service) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	s.done = make(chan struct{})
	s.started.Store(true)
	go func() {
		defer close(s.done)
		_ = s.engine.Run(ctx)
	}()
}

// BeginDrain flips the readiness probe to not-ready without stopping
// the engine: call it before shutting the HTTP listener down so load
// balancers stop routing while in-flight requests still complete.
func (s *Service) BeginDrain() { s.draining.Store(true) }

// Drain stops the engine loop and waits for in-flight steps to finish
// (engine.Run only returns after the current scheduling pass
// completes). Safe to call when Start was never invoked.
func (s *Service) Drain() {
	s.draining.Store(true)
	if s.cancel == nil {
		return
	}
	s.cancel()
	<-s.done
}

// Tick is one ingested sampling interval: usage percent per VM, in
// registered VM order.
type Tick struct {
	CPU []float64 `json:"cpu"`
	RAM []float64 `json:"ram"`
}

// SamplesRequest is the POST /v1/boxes/{id}/samples body. Box carries
// the box's static configuration; it is required on (and only
// consulted for) the first call for a box — re-announcements are
// idempotent, shape changes rejected.
type SamplesRequest struct {
	Box     *state.BoxMeta `json:"box,omitempty"`
	Samples []Tick         `json:"samples"`
}

// BatchEntry is one box's slice of a batched ingest body.
type BatchEntry struct {
	ID      string         `json:"id"`
	Box     *state.BoxMeta `json:"box,omitempty"`
	Samples []Tick         `json:"samples"`
}

// BatchRequest is the POST /v1/ingest body: samples for many boxes in
// one round trip.
type BatchRequest struct {
	Boxes []BatchEntry `json:"boxes"`
}

// BatchBoxResult reports one box's outcome inside a batch response:
// either the box's new sample total or the error that rejected its
// entry (other entries are unaffected — each box is all-or-nothing on
// its own).
type BatchBoxResult struct {
	Box   string `json:"box"`
	Total int    `json:"total,omitempty"`
	Error string `json:"error,omitempty"`
}

// BatchResponse is the POST /v1/ingest response. Accepted counts
// ticks actually appended across all boxes.
type BatchResponse struct {
	Accepted int              `json:"accepted"`
	Failed   int              `json:"failed"`
	Boxes    []BatchBoxResult `json:"boxes"`
}

// ingestScratch holds the per-request decode state for the batched
// ingestion path. Pooling it lets the hot loop reuse the request
// struct's entry slice, every entry's tick slices (encoding/json
// decodes into existing capacity) and the AppendBatch staging arrays
// instead of re-growing them on every request.
type ingestScratch struct {
	req      BatchRequest
	cpu, ram [][]float64
	results  []BatchBoxResult
}

var scratchPool = sync.Pool{New: func() any { return new(ingestScratch) }}

// stage converts a box entry's ticks into the parallel cpu/ram arrays
// AppendBatch wants, reusing the scratch capacity.
func (sc *ingestScratch) stage(samples []Tick) (cpu, ram [][]float64) {
	sc.cpu, sc.ram = sc.cpu[:0], sc.ram[:0]
	for k := range samples {
		sc.cpu = append(sc.cpu, samples[k].CPU)
		sc.ram = append(sc.ram, samples[k].RAM)
	}
	return sc.cpu, sc.ram
}

// jsonError mirrors the actuator API's error convention.
func jsonError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// boxRoute splits /v1/boxes/{id}/{verb} and returns id, verb.
func boxRoute(path string) (string, string, bool) {
	rest, ok := strings.CutPrefix(path, "/v1/boxes/")
	if !ok {
		return "", "", false
	}
	id, verb, ok := strings.Cut(rest, "/")
	if !ok || id == "" || strings.Contains(verb, "/") {
		return "", "", false
	}
	return id, verb, true
}

// decode parses a JSON body under the service's size cap, translating
// the MaxBytesReader trip into 413 with the JSON error convention.
// Returns false after writing the error response.
func (s *Service) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	body := r.Body
	if s.maxBody > 0 {
		body = http.MaxBytesReader(w, r.Body, s.maxBody)
	}
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			jsonError(w, http.StatusRequestEntityTooLarge,
				"body exceeds %d bytes: split the batch", tooBig.Limit)
			return false
		}
		jsonError(w, http.StatusBadRequest, "bad body: %v", err)
		return false
	}
	return true
}

// Handler routes the per-box streaming API:
//
//	POST /v1/boxes/{id}/samples  ingest usage ticks (registering the
//	                             box from the body's "box" meta on
//	                             first contact)
//	GET  /v1/boxes/{id}/plan     latest resize plan for the box
//	GET  /v1/boxes/{id}/whatif   dry-run actuation plan: what applying
//	                             the latest plan would write per VM
//	                             after policy rails, without touching
//	                             the backend
//	GET  /v1/boxes/{id}/debug    step state, last decision, forecast
//	                             scorecard, recent events and the
//	                             last step's span tree
func (s *Service) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id, verb, ok := boxRoute(r.URL.Path)
		if !ok {
			jsonError(w, http.StatusNotFound, "unknown route %s", r.URL.Path)
			return
		}
		switch verb {
		case "samples":
			if r.Method != http.MethodPost {
				jsonError(w, http.StatusMethodNotAllowed, "samples is POST-only")
				return
			}
			s.handleSamples(w, r, id)
		case "plan":
			if r.Method != http.MethodGet {
				jsonError(w, http.StatusMethodNotAllowed, "plan is GET-only")
				return
			}
			s.handlePlan(w, id)
		case "whatif":
			if r.Method != http.MethodGet {
				jsonError(w, http.StatusMethodNotAllowed, "whatif is GET-only")
				return
			}
			s.handleWhatIf(w, r, id)
		case "debug":
			if r.Method != http.MethodGet {
				jsonError(w, http.StatusMethodNotAllowed, "debug is GET-only")
				return
			}
			s.handleDebug(w, id)
		default:
			jsonError(w, http.StatusNotFound, "unknown route %s", r.URL.Path)
		}
	})
}

// IngestHandler serves POST /v1/ingest: samples for many boxes in one
// body, each box all-or-nothing with per-box error reporting.
func (s *Service) IngestHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			jsonError(w, http.StatusMethodNotAllowed, "ingest is POST-only")
			return
		}
		s.handleIngest(w, r)
	})
}

// register applies a request's optional box meta, reporting the error
// through the given sink. urlID pins the box id the route named; for
// batch entries it is the entry's id field.
func (s *Service) register(meta *state.BoxMeta, id string) (int, error) {
	if meta == nil {
		return 0, nil
	}
	m := *meta
	if m.ID == "" {
		m.ID = id
	}
	if m.ID != id {
		return http.StatusBadRequest, fmt.Errorf("body box id %q != entry id %q", m.ID, id)
	}
	if err := s.store.Register(m); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, state.ErrShapeMismatch) {
			status = http.StatusConflict
		}
		return status, fmt.Errorf("register: %w", err)
	}
	return 0, nil
}

// appendStatus maps a store append error to an HTTP status.
func appendStatus(err error) int {
	switch {
	case errors.Is(err, state.ErrUnknownBox):
		return http.StatusNotFound
	case errors.Is(err, state.ErrShapeMismatch):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func (s *Service) handleSamples(w http.ResponseWriter, r *http.Request, id string) {
	var req SamplesRequest
	if !s.decode(w, r, &req) {
		return
	}
	if code, err := s.register(req.Box, id); err != nil {
		jsonError(w, code, "%v", err)
		return
	}
	sc := scratchPool.Get().(*ingestScratch)
	cpu, ram := sc.stage(req.Samples)
	// The ingest span is the root of the step's trace: AppendBatchCtx
	// retains its ids on the box, and the scheduler parents the
	// resulting engine.step span under it.
	ctx, span := obs.StartSpan(obs.WithTracer(r.Context(), s.tracer), "serve.ingest")
	span.SetAttr("box", id)
	span.SetAttr("ticks", len(req.Samples))
	// AppendBatch validates every tick before the first ring write, so
	// a rejected request appends nothing and the client can retry the
	// whole batch without duplicating ticks.
	total, err := s.store.AppendBatchCtx(ctx, id, cpu, ram)
	span.End()
	scratchPool.Put(sc)
	if err != nil {
		if errors.Is(err, state.ErrUnknownBox) {
			jsonError(w, http.StatusNotFound,
				"box %q not registered: include \"box\" meta in the first request", id)
			return
		}
		jsonError(w, appendStatus(err), "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"box": id, "total": total, "accepted": len(req.Samples),
	})
}

func (s *Service) handleIngest(w http.ResponseWriter, r *http.Request) {
	sc := scratchPool.Get().(*ingestScratch)
	defer scratchPool.Put(sc)
	// encoding/json appends into existing capacity without zeroing, so
	// stale fields from a previous request would survive an entry that
	// omits them — clear the reused elements, keep the array.
	for i := range sc.req.Boxes {
		sc.req.Boxes[i] = BatchEntry{}
	}
	sc.req.Boxes = sc.req.Boxes[:0]
	if !s.decode(w, r, &sc.req) {
		return
	}
	ingestBatchSize.Observe(float64(len(sc.req.Boxes)))
	// One ingest span per batch request; every appended box adopts it
	// as the parent of its next engine step.
	ctx, span := obs.StartSpan(obs.WithTracer(r.Context(), s.tracer), "serve.ingest")
	span.SetAttr("boxes", len(sc.req.Boxes))
	defer span.End()
	sc.results = sc.results[:0]
	accepted, failed := 0, 0
	for i := range sc.req.Boxes {
		e := &sc.req.Boxes[i]
		res := BatchBoxResult{Box: e.ID}
		switch {
		case e.ID == "":
			res.Error = "entry missing box id"
		default:
			if _, err := s.register(e.Box, e.ID); err != nil {
				res.Error = err.Error()
				break
			}
			cpu, ram := sc.stage(e.Samples)
			total, err := s.store.AppendBatchCtx(ctx, e.ID, cpu, ram)
			if err != nil {
				res.Error = err.Error()
				break
			}
			res.Total = total
			accepted += len(e.Samples)
		}
		if res.Error != "" {
			failed++
		}
		sc.results = append(sc.results, res)
	}
	// Per-box outcomes, not a request-level verdict: one bad entry
	// must not force a retry of its healthy neighbours.
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(BatchResponse{
		Accepted: accepted, Failed: failed, Boxes: sc.results,
	})
}

func (s *Service) handlePlan(w http.ResponseWriter, id string) {
	start := time.Now()
	defer func() { planLatency.Observe(obs.Since(start)) }()
	if _, err := s.store.Meta(id); err != nil {
		jsonError(w, http.StatusNotFound, "box %q not registered", id)
		return
	}
	plan, ok := s.engine.Plan(id)
	if !ok {
		jsonError(w, http.StatusNotFound,
			"box %q has no plan yet: the first plan needs %d samples", id, s.engine.Need(0))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(plan)
}

// handleWhatIf serves GET /v1/boxes/{id}/whatif: the per-VM actuation
// plan that applying the box's latest resize plan would produce —
// current limits, policy-railed targets, creates and rejections —
// computed against the configured backend with reads only. It answers
// "what would the controller do to my box right now" without risking
// a single write, including under Engine.DryRun.
func (s *Service) handleWhatIf(w http.ResponseWriter, r *http.Request, id string) {
	b := s.engine.Backend()
	if b == nil {
		jsonError(w, http.StatusConflict,
			"no actuation backend configured: whatif needs engine Config.Backend")
		return
	}
	meta, err := s.store.Meta(id)
	if err != nil {
		jsonError(w, http.StatusNotFound, "box %q not registered", id)
		return
	}
	plan, ok := s.engine.Plan(id)
	if !ok {
		jsonError(w, http.StatusNotFound,
			"box %q has no plan yet: the first plan needs %d samples", id, s.engine.Need(0))
		return
	}
	vms := make([]string, len(meta.VMs))
	for i := range meta.VMs {
		vms[i] = meta.VMs[i].ID
	}
	cfg, _ := s.engine.PolicyConfig()
	wp := policy.WhatIf(r.Context(), b, cfg, id, vms, plan.CPUSizes, plan.RAMSizes)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(wp)
}
