package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"atm/internal/core"
	"atm/internal/engine"
	"atm/internal/predict"
	"atm/internal/spatial"
	"atm/internal/state"
)

func testService(t *testing.T, maxBody int64) *Service {
	t.Helper()
	spd := 8
	cfg := engine.Config{
		Core: core.Config{
			Spatial:      spatial.Config{Method: spatial.MethodCBC},
			Temporal:     func() predict.Model { return &predict.SeasonalNaive{Period: spd} },
			TrainWindows: 2 * spd,
			Horizon:      spd,
			Threshold:    0.6,
			Epsilon:      0.1,
			Degraded:     true,
		},
		SamplesPerDay: spd,
	}
	svc, err := New(Config{
		History: 2 * (cfg.Core.TrainWindows + cfg.Core.Horizon),
		Shards:  3,
		Engine:  cfg,
		MaxBody: maxBody,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return svc
}

func boxMeta(id string, vms int) state.BoxMeta {
	m := state.BoxMeta{ID: id, CPUCapGHz: 10, RAMCapGB: 64}
	for v := 0; v < vms; v++ {
		m.VMs = append(m.VMs, state.VMMeta{
			ID: fmt.Sprintf("%s-vm%d", id, v), CPUCapGHz: 2, RAMCapGB: 8,
		})
	}
	return m
}

func ticks(vms, n int, base float64) []Tick {
	out := make([]Tick, n)
	for k := range out {
		out[k] = Tick{CPU: make([]float64, vms), RAM: make([]float64, vms)}
		for v := 0; v < vms; v++ {
			out[k].CPU[v] = base + float64(k)
			out[k].RAM[v] = base + float64(k)/2
		}
	}
	return out
}

// TestBoxRoute is the routing table test for the /v1/boxes/{id}/{verb}
// splitter.
func TestBoxRoute(t *testing.T) {
	for _, tc := range []struct {
		path     string
		id, verb string
		ok       bool
	}{
		{"/v1/boxes/b1/samples", "b1", "samples", true},
		{"/v1/boxes/b1/plan", "b1", "plan", true},
		{"/v1/boxes/b-weird.id/plan", "b-weird.id", "plan", true},
		{"/v1/boxes/b1/anything", "b1", "anything", true},
		{"/v1/boxes/", "", "", false},
		{"/v1/boxes/b1", "", "", false},
		{"/v1/boxes//plan", "", "", false},
		{"/v1/boxes/b1/plan/extra", "", "", false},
		{"/v1/ingest", "", "", false},
		{"/v2/boxes/b1/plan", "", "", false},
	} {
		id, verb, ok := boxRoute(tc.path)
		if id != tc.id || verb != tc.verb || ok != tc.ok {
			t.Errorf("boxRoute(%q) = (%q, %q, %v), want (%q, %q, %v)",
				tc.path, id, verb, ok, tc.id, tc.verb, tc.ok)
		}
	}
}

func postJSON(t *testing.T, h http.Handler, path string, body any) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, &buf)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w, w.Body.Bytes()
}

// TestIngestBatch pushes a mixed batch through /v1/ingest: two healthy
// boxes (one registering in-band), one unknown box and one shape
// error. The healthy entries land, the broken ones report per-box
// errors without poisoning their neighbours.
func TestIngestBatch(t *testing.T) {
	svc := testService(t, 0)
	h := svc.IngestHandler()
	m1, m2 := boxMeta("b1", 2), boxMeta("b2", 3)
	if err := svc.Store().Register(m1); err != nil {
		t.Fatal(err)
	}

	bad := ticks(2, 2, 0)
	bad[1].CPU = bad[1].CPU[:1] // tick 1 shape mismatch
	w, body := postJSON(t, h, "/v1/ingest", BatchRequest{Boxes: []BatchEntry{
		{ID: "b1", Samples: ticks(2, 4, 1)},
		{ID: "b2", Box: &m2, Samples: ticks(3, 5, 2)},
		{ID: "ghost", Samples: ticks(1, 1, 0)},
		{ID: "b1", Samples: bad},
		{Samples: ticks(1, 1, 0)}, // missing id
	}})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Accepted != 9 || resp.Failed != 3 {
		t.Fatalf("accepted=%d failed=%d, want 9/3: %s", resp.Accepted, resp.Failed, body)
	}
	if len(resp.Boxes) != 5 {
		t.Fatalf("results: %d entries, want 5", len(resp.Boxes))
	}
	for i, wantErr := range []bool{false, false, true, true, true} {
		if got := resp.Boxes[i].Error != ""; got != wantErr {
			t.Errorf("entry %d: error=%q, want error=%v", i, resp.Boxes[i].Error, wantErr)
		}
	}
	// The failing b1 entry appended nothing: total is still 4.
	if total, _ := svc.Store().Total("b1"); total != 4 {
		t.Errorf("b1 total = %d, want 4 (bad batch must be all-or-nothing)", total)
	}
	if total, _ := svc.Store().Total("b2"); total != 5 {
		t.Errorf("b2 total = %d, want 5", total)
	}
	if _, err := svc.Store().Total("ghost"); err == nil {
		t.Error("ghost box was created by a failed entry")
	}
}

// TestIngestScratchReuse replays distinct batches back to back so the
// pooled decode scratch is reused, and checks nothing leaks between
// requests (stale entries, stale samples).
func TestIngestScratchReuse(t *testing.T) {
	svc := testService(t, 0)
	h := svc.IngestHandler()
	m := boxMeta("b1", 1)
	if err := svc.Store().Register(m); err != nil {
		t.Fatal(err)
	}
	// First request: a wide batch.
	entries := make([]BatchEntry, 8)
	for i := range entries {
		entries[i] = BatchEntry{ID: "b1", Samples: ticks(1, 2, float64(i))}
	}
	w, body := postJSON(t, h, "/v1/ingest", BatchRequest{Boxes: entries})
	if w.Code != http.StatusOK {
		t.Fatalf("first: status %d: %s", w.Code, body)
	}
	// Second request: a single entry. A stale-scratch bug would surface
	// extra entries or phantom samples here.
	w, body = postJSON(t, h, "/v1/ingest", BatchRequest{Boxes: []BatchEntry{
		{ID: "b1", Samples: ticks(1, 1, 99)},
	}})
	if w.Code != http.StatusOK {
		t.Fatalf("second: status %d: %s", w.Code, body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Boxes) != 1 || resp.Accepted != 1 {
		t.Fatalf("scratch leak: %s", body)
	}
	if total, _ := svc.Store().Total("b1"); total != 17 {
		t.Fatalf("b1 total = %d, want 17", total)
	}
}

// TestSamplesNoPartialAppend is the regression test for the
// partial-append bug: a batch whose tick i has a bad shape must append
// nothing, so the client's retry after the 400 cannot duplicate ticks
// 0..i-1.
func TestSamplesNoPartialAppend(t *testing.T) {
	svc := testService(t, 0)
	h := svc.Handler()
	m := boxMeta("b1", 2)
	if err := svc.Store().Register(m); err != nil {
		t.Fatal(err)
	}
	bad := ticks(2, 5, 0)
	bad[3].RAM = bad[3].RAM[:1]
	w, body := postJSON(t, h, "/v1/boxes/b1/samples", SamplesRequest{Samples: bad})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", w.Code, body)
	}
	if total, _ := svc.Store().Total("b1"); total != 0 {
		t.Fatalf("total = %d after rejected batch, want 0", total)
	}
	// The retry with the repaired batch lands exactly once.
	good := ticks(2, 5, 0)
	w, body = postJSON(t, h, "/v1/boxes/b1/samples", SamplesRequest{Samples: good})
	if w.Code != http.StatusOK {
		t.Fatalf("retry: status %d: %s", w.Code, body)
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out["accepted"].(float64) != 5 || out["total"].(float64) != 5 {
		t.Fatalf("retry response: %s", body)
	}
}

// TestMaxBody checks the configurable request-size cap returns 413
// with the JSON error convention on both ingest routes.
func TestMaxBody(t *testing.T) {
	svc := testService(t, 256)
	m := boxMeta("b1", 4)
	if err := svc.Store().Register(m); err != nil {
		t.Fatal(err)
	}
	huge := BatchRequest{Boxes: []BatchEntry{{ID: "b1", Samples: ticks(4, 64, 0)}}}
	for _, tc := range []struct {
		path string
		h    http.Handler
		body any
	}{
		{"/v1/ingest", svc.IngestHandler(), huge},
		{"/v1/boxes/b1/samples", svc.Handler(), SamplesRequest{Samples: ticks(4, 64, 0)}},
	} {
		w, body := postJSON(t, tc.h, tc.path, tc.body)
		if w.Code != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: status %d, want 413", tc.path, w.Code)
		}
		var msg map[string]string
		if err := json.Unmarshal(body, &msg); err != nil || msg["error"] == "" {
			t.Errorf("%s: 413 body not a JSON error: %s", tc.path, body)
		}
		if ct := w.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: Content-Type = %q", tc.path, ct)
		}
	}
	// Under the cap still works.
	w, body := postJSON(t, svc.Handler(), "/v1/boxes/b1/samples",
		SamplesRequest{Samples: ticks(4, 1, 0)})
	if w.Code != http.StatusOK {
		t.Errorf("small body: status %d: %s", w.Code, body)
	}
}

// TestIngestFeedsEngine closes the loop: batched ingest marks boxes
// dirty, one engine pass plans them.
func TestIngestFeedsEngine(t *testing.T) {
	svc := testService(t, 0)
	h := svc.IngestHandler()
	m := boxMeta("b1", 2)
	need := svc.Engine().Need(0)
	w, body := postJSON(t, h, "/v1/ingest", BatchRequest{Boxes: []BatchEntry{
		{ID: "b1", Box: &m, Samples: ticks(2, need, 5)},
	}})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, body)
	}
	svc.Engine().Sync(context.Background())
	if _, ok := svc.Engine().Plan("b1"); !ok {
		t.Fatal("no plan after batched ingest + sync")
	}
}

// TestIngestMethodAndBody covers the ingest handler's own error paths
// not reachable through the daemon mux tests.
func TestIngestMethodAndBody(t *testing.T) {
	svc := testService(t, 0)
	h := svc.IngestHandler()
	req := httptest.NewRequest(http.MethodDelete, "/v1/ingest", strings.NewReader(""))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("DELETE: status %d, want 405", w.Code)
	}
}
