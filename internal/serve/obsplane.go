package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"atm/internal/engine"
	"atm/internal/obs"
	"atm/internal/score"
)

// DefaultEventTail is how many recent events GET /v1/events returns
// when the request does not pick a count.
const DefaultEventTail = 100

// debugEventTail is how many of the box's recent events ride along in
// the debug payload.
const debugEventTail = 32

// Events exposes the service's decision event log.
func (s *Service) Events() *obs.EventLog { return s.events }

// SpanRing exposes the in-memory span ring backing the debug
// endpoint's trace lookup.
func (s *Service) SpanRing() *obs.RingExporter { return s.ring }

// Tracer exposes the service's tracer (the load harness spans its own
// client work into the same ring).
func (s *Service) Tracer() *obs.Tracer { return s.tracer }

// Ready reports whether the service can take traffic: started, not
// draining, every shard scheduler loop live. The reason explains a
// false verdict.
func (s *Service) Ready() (bool, string) {
	if s.draining.Load() {
		return false, "draining"
	}
	if !s.started.Load() {
		return false, "engine not started"
	}
	if running, want := s.engine.RunningShards(), s.store.Shards(); running < want {
		return false, fmt.Sprintf("%d/%d shard scheduler loops running", running, want)
	}
	return true, "ok"
}

// ReadyzHandler serves GET /readyz: 200 when the service is taking
// traffic, 503 (with the reason) while starting up or draining.
// Liveness stays on /healthz (obs.HealthzHandler) — a draining daemon
// is alive but not ready.
func (s *Service) ReadyzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ready, reason := s.Ready()
		w.Header().Set("Content-Type", "application/json")
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(map[string]any{"ready": ready, "reason": reason})
	})
}

// EventsResponse is the GET /v1/events payload: the requested tail of
// the decision event log plus its lifetime counters.
type EventsResponse struct {
	Events []obs.Event `json:"events"`
	// Total counts events ever published; Dropped counts events the
	// JSONL sink lost (the in-memory tail never drops silently — old
	// events are overwritten, which Total exposes).
	Total   uint64 `json:"total"`
	Dropped uint64 `json:"dropped"`
}

// EventsHandler serves GET /v1/events?box={id}&n={count}: the most
// recent decision events, oldest first. n defaults to
// DefaultEventTail; box filters to one box.
func (s *Service) EventsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			jsonError(w, http.StatusMethodNotAllowed, "events is GET-only")
			return
		}
		n := DefaultEventTail
		if raw := r.URL.Query().Get("n"); raw != "" {
			v, err := strconv.Atoi(raw)
			if err != nil || v < 1 {
				jsonError(w, http.StatusBadRequest, "n must be a positive integer, got %q", raw)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(EventsResponse{
			Events:  s.events.Tail(n, r.URL.Query().Get("box")),
			Total:   s.events.Total(),
			Dropped: s.events.Dropped(),
		})
	})
}

// DebugResponse is the GET /v1/boxes/{id}/debug payload: the engine's
// step state and last decision, the forecast scorecard, the box's
// recent decision events, and the span tree of the last step's trace.
type DebugResponse struct {
	engine.BoxDebug
	// Scorecard is nil until the box's first step is scored.
	Scorecard *score.Card `json:"scorecard,omitempty"`
	// Events is the box's recent decision-event tail, oldest first.
	Events []obs.Event `json:"events,omitempty"`
	// Spans is the recorded span tree of the last plan's trace (empty
	// when the ring has already recycled it).
	Spans []obs.SpanData `json:"spans,omitempty"`
}

func (s *Service) handleDebug(w http.ResponseWriter, id string) {
	if _, err := s.store.Meta(id); err != nil {
		jsonError(w, http.StatusNotFound, "box %q not registered", id)
		return
	}
	dbg, ok := s.engine.Debug(id)
	if !ok {
		// Registered but never inspected by a pass yet: an empty
		// snapshot, not an error — operators hit this route while a box
		// is still filling its first window.
		dbg = engine.BoxDebug{Box: id, Shard: s.store.ShardOf(id)}
	}
	resp := DebugResponse{BoxDebug: dbg}
	if card, ok := s.engine.Scores().Snapshot(id); ok {
		resp.Scorecard = &card
	}
	resp.Events = s.events.Tail(debugEventTail, id)
	if dbg.Plan != nil && dbg.Plan.TraceID != "" {
		resp.Spans = s.ring.Trace(dbg.Plan.TraceID)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}
