package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// ingestAndSync pushes enough samples for the first plan and runs a
// synchronous engine pass.
func ingestAndSync(t *testing.T, svc *Service, id string) {
	t.Helper()
	m := boxMeta(id, 2)
	need := svc.Engine().Need(0)
	w, body := postJSON(t, svc.IngestHandler(), "/v1/ingest", BatchRequest{Boxes: []BatchEntry{
		{ID: id, Box: &m, Samples: ticks(2, need, 5)},
	}})
	if w.Code != http.StatusOK {
		t.Fatalf("ingest status %d: %s", w.Code, body)
	}
	svc.Engine().Sync(context.Background())
}

func TestReadyzLifecycle(t *testing.T) {
	svc := testService(t, 0)
	readyz := svc.ReadyzHandler()

	get := func() (int, map[string]any) {
		w := httptest.NewRecorder()
		readyz.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/readyz", nil))
		var m map[string]any
		if err := json.Unmarshal(w.Body.Bytes(), &m); err != nil {
			t.Fatalf("readyz body: %v", err)
		}
		return w.Code, m
	}

	if code, m := get(); code != http.StatusServiceUnavailable || m["ready"] != false {
		t.Fatalf("not-started readyz = %d %v, want 503 not-ready", code, m)
	}

	svc.Start()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if ok, _ := svc.Ready(); ok {
			break
		}
		if time.Now().After(deadline) {
			_, reason := svc.Ready()
			t.Fatalf("service never became ready: %s", reason)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if code, m := get(); code != http.StatusOK || m["ready"] != true {
		t.Fatalf("running readyz = %d %v, want 200 ready", code, m)
	}

	// BeginDrain flips readiness before the engine stops.
	svc.BeginDrain()
	if code, m := get(); code != http.StatusServiceUnavailable || m["reason"] != "draining" {
		t.Fatalf("draining readyz = %d %v, want 503 draining", code, m)
	}
	svc.Drain()
	if code, _ := get(); code != http.StatusServiceUnavailable {
		t.Fatalf("drained readyz = %d, want 503", code)
	}
}

func TestEventsEndpoint(t *testing.T) {
	svc := testService(t, 0)
	ingestAndSync(t, svc, "b1")

	w := httptest.NewRecorder()
	svc.EventsHandler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/events?box=b1", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("events status %d: %s", w.Code, w.Body)
	}
	var resp EventsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("events body: %v", err)
	}
	if resp.Total == 0 || len(resp.Events) == 0 {
		t.Fatalf("no events after a planned step: %+v", resp)
	}
	sawPlan := false
	for _, ev := range resp.Events {
		if ev.Box != "b1" {
			t.Fatalf("box filter leaked %q", ev.Box)
		}
		if ev.Type == "plan" {
			sawPlan = true
			if ev.Reason == "" || ev.TraceID == "" {
				t.Fatalf("plan event missing reason/trace: %+v", ev)
			}
		}
	}
	if !sawPlan {
		t.Fatal("no plan event for the planned box")
	}

	// n= validation: anything that is not a positive integer is a 400
	// with a JSON error body; valid values (and an absent n) are 200.
	for _, tc := range []struct {
		n    string
		code int
	}{
		{"zero", http.StatusBadRequest},
		{"-1", http.StatusBadRequest},
		{"0", http.StatusBadRequest},
		{"1.5", http.StatusBadRequest},
		{"", http.StatusOK},
		{"1", http.StatusOK},
		{"500", http.StatusOK},
	} {
		target := "/v1/events"
		if tc.n != "" {
			target += "?n=" + tc.n
		}
		w = httptest.NewRecorder()
		svc.EventsHandler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, target, nil))
		if w.Code != tc.code {
			t.Fatalf("n=%q status = %d, want %d", tc.n, w.Code, tc.code)
		}
		if tc.code == http.StatusBadRequest {
			var body map[string]string
			if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil || body["error"] == "" {
				t.Fatalf("n=%q error body = %q (err %v), want JSON error", tc.n, w.Body, err)
			}
		}
	}
}

func TestDebugEndpoint(t *testing.T) {
	svc := testService(t, 0)
	ingestAndSync(t, svc, "b1")
	h := svc.Handler()

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/boxes/b1/debug", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("debug status %d: %s", w.Code, w.Body)
	}
	var resp DebugResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("debug body: %v", err)
	}
	if resp.Box != "b1" || resp.Steps == 0 || resp.Plan == nil {
		t.Fatalf("debug missing step state: %+v", resp.BoxDebug)
	}
	if resp.Decision.Reason == "" {
		t.Fatalf("debug missing decision: %+v", resp.BoxDebug)
	}
	if resp.Scorecard == nil || resp.Scorecard.TicketsRealized < 0 {
		t.Fatalf("debug missing scorecard: %+v", resp.Scorecard)
	}
	if len(resp.Events) == 0 {
		t.Fatal("debug missing event tail")
	}
	// The span tree matches the plan's trace id end-to-end: the ingest
	// root span and the engine step under it.
	if resp.Plan.TraceID == "" || len(resp.Spans) == 0 {
		t.Fatalf("debug missing span tree (trace %q, %d spans)", resp.Plan.TraceID, len(resp.Spans))
	}
	names := map[string]bool{}
	for _, s := range resp.Spans {
		if s.TraceID != resp.Plan.TraceID {
			t.Fatalf("span %s from foreign trace %s", s.Name, s.TraceID)
		}
		names[s.Name] = true
	}
	if !names["serve.ingest"] || !names["engine.step"] {
		t.Fatalf("trace lacks ingest→step chain: %v", names)
	}

	// Unknown box is a 404; registered-but-unstepped box is an empty
	// 200 snapshot.
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/boxes/ghost/debug", nil))
	if w.Code != http.StatusNotFound {
		t.Fatalf("unknown-box debug status = %d, want 404", w.Code)
	}
	m := boxMeta("b2", 1)
	if err := svc.Store().Register(m); err != nil {
		t.Fatal(err)
	}
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/boxes/b2/debug", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("fresh-box debug status = %d, want 200", w.Code)
	}
}
