package resize

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"atm/internal/timeseries"
)

func TestGreedyAbundantCapacity(t *testing.T) {
	// With enough capacity every VM gets its ticket-free size: zero
	// tickets.
	p := &Problem{
		VMs: []VM{
			{Demand: timeseries.Series{30, 30, 40, 40, 23, 25, 60, 60, 60, 60}},
			{Demand: timeseries.Series{10, 20, 10, 20, 10, 20, 10, 20, 10, 20}},
		},
		Capacity:  1000,
		Threshold: 0.6,
	}
	a, err := p.Greedy()
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	if a.Tickets != 0 {
		t.Errorf("Tickets = %d, want 0 with abundant capacity", a.Tickets)
	}
	// Each size must be at least peak/threshold.
	if a.Sizes[0] < 60/0.6-1e-9 {
		t.Errorf("size[0] = %v, want >= 100", a.Sizes[0])
	}
	if a.Sizes[1] < 20/0.6-1e-9 {
		t.Errorf("size[1] = %v, want >= 33.3", a.Sizes[1])
	}
}

func TestGreedyTightCapacityPrefersCheapTickets(t *testing.T) {
	// VM0 peaks rarely (one spike), VM1 peaks constantly. With capacity
	// for only one ticket-free allocation, the solver should squeeze
	// VM0 (losing 1 ticket) rather than VM1 (losing many).
	p := &Problem{
		VMs: []VM{
			{Demand: timeseries.Series{10, 10, 10, 10, 60, 10, 10, 10, 10, 10}},
			{Demand: timeseries.Series{50, 50, 50, 50, 50, 50, 50, 50, 50, 50}},
		},
		Capacity:  100, // VM1 ticket-free needs 83.3; VM0 needs 100
		Threshold: 0.6,
	}
	a, err := p.Greedy()
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	if a.Tickets > 1 {
		t.Errorf("Tickets = %d, want <= 1 (drop only the spike)", a.Tickets)
	}
	if a.Sizes[1] < 50/0.6-1e-9 {
		t.Errorf("constant-load VM squeezed: size = %v", a.Sizes[1])
	}
}

func TestGreedyRespectsCapacity(t *testing.T) {
	p := &Problem{
		VMs: []VM{
			{Demand: timeseries.Series{40, 50, 60}},
			{Demand: timeseries.Series{30, 35, 45}},
			{Demand: timeseries.Series{20, 25, 28}},
		},
		Capacity:  90,
		Threshold: 0.6,
	}
	a, err := p.Greedy()
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	var sum float64
	for _, s := range a.Sizes {
		sum += s
	}
	if sum > p.Capacity+1e-9 {
		t.Errorf("allocated %v > capacity %v", sum, p.Capacity)
	}
}

func TestGreedyLowerBound(t *testing.T) {
	p := &Problem{
		VMs: []VM{
			{Demand: timeseries.Series{10, 10, 10}, LowerBound: 42},
			{Demand: timeseries.Series{10, 10, 10}},
		},
		Capacity:  100,
		Threshold: 0.6,
	}
	a, err := p.Greedy()
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	if a.Sizes[0] < 42 {
		t.Errorf("size[0] = %v violates lower bound 42", a.Sizes[0])
	}
}

func TestGreedyInfeasible(t *testing.T) {
	p := &Problem{
		VMs: []VM{
			{Demand: timeseries.Series{10}, LowerBound: 60},
			{Demand: timeseries.Series{10}, LowerBound: 60},
		},
		Capacity:  100,
		Threshold: 0.6,
	}
	if _, err := p.Greedy(); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
	if _, err := p.Exact(); !errors.Is(err, ErrInfeasible) {
		t.Errorf("exact err = %v, want ErrInfeasible", err)
	}
}

func TestValidation(t *testing.T) {
	base := func() *Problem {
		return &Problem{
			VMs:       []VM{{Demand: timeseries.Series{1, 2}}},
			Capacity:  10,
			Threshold: 0.6,
		}
	}
	tests := []struct {
		name   string
		mutate func(*Problem)
	}{
		{"negative capacity", func(p *Problem) { p.Capacity = -1 }},
		{"zero threshold", func(p *Problem) { p.Threshold = 0 }},
		{"threshold above 1", func(p *Problem) { p.Threshold = 1.5 }},
		{"negative epsilon", func(p *Problem) { p.Epsilon = -1 }},
		{"empty demand", func(p *Problem) { p.VMs[0].Demand = nil }},
		{"negative demand", func(p *Problem) { p.VMs[0].Demand = timeseries.Series{-1} }},
		{"NaN demand", func(p *Problem) { p.VMs[0].Demand = timeseries.Series{math.NaN()} }},
		{"negative lower bound", func(p *Problem) { p.VMs[0].LowerBound = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := base()
			tt.mutate(p)
			if _, err := p.Greedy(); !errors.Is(err, ErrBadProblem) {
				t.Errorf("Greedy err = %v, want ErrBadProblem", err)
			}
		})
	}
}

func TestEmptyProblem(t *testing.T) {
	p := &Problem{Capacity: 10, Threshold: 0.6}
	a, err := p.Greedy()
	if err != nil || len(a.Sizes) != 0 || a.Tickets != 0 {
		t.Errorf("empty Greedy = %+v, %v", a, err)
	}
	a, err = p.Exact()
	if err != nil || len(a.Sizes) != 0 {
		t.Errorf("empty Exact = %+v, %v", a, err)
	}
}

func TestEpsilonDiscretization(t *testing.T) {
	p := &Problem{
		VMs:       []VM{{Demand: timeseries.Series{23, 25, 30, 40, 60}}},
		Capacity:  1000,
		Threshold: 0.6,
		Epsilon:   5,
	}
	a, err := p.Greedy()
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	// Sizes must be multiples of epsilon (rounded up), and at least the
	// ticket-free 60/0.6 = 100.
	if rem := math.Mod(a.Sizes[0], 5); rem > 1e-9 && rem < 5-1e-9 {
		t.Errorf("size %v not a multiple of epsilon", a.Sizes[0])
	}
	if a.Sizes[0] < 100 {
		t.Errorf("size %v below ticket-free 100", a.Sizes[0])
	}
	if a.Tickets != 0 {
		t.Errorf("Tickets = %d, want 0", a.Tickets)
	}
}

func TestEpsilonReducesCandidates(t *testing.T) {
	demand := timeseries.Series{23, 25, 30, 30, 40, 40, 60, 60, 60, 60}
	fine := &Problem{VMs: []VM{{Demand: demand}}, Capacity: 1000, Threshold: 0.6}
	coarse := &Problem{VMs: []VM{{Demand: demand}}, Capacity: 1000, Threshold: 0.6, Epsilon: 20}
	fc, _ := fine.candidates(0)
	cc, _ := coarse.candidates(0)
	if len(cc) >= len(fc) {
		t.Errorf("epsilon did not shrink candidates: %d vs %d", len(cc), len(fc))
	}
}

// Paper running example: Di = {30,30,40,40,23,25,60,60,60,60} reduces
// to 6 unique candidates (5 unique demands + the zero/lower bound).
func TestCandidatesPaperExample(t *testing.T) {
	p := &Problem{
		VMs:       []VM{{Demand: timeseries.Series{30, 30, 40, 40, 23, 25, 60, 60, 60, 60}}},
		Capacity:  1e9,
		Threshold: 0.6,
	}
	sizes, tickets := p.candidates(0)
	if len(sizes) != 6 {
		t.Fatalf("candidates = %v, want 6 values", sizes)
	}
	// Strictly decreasing, ending at 0.
	for i := 1; i < len(sizes); i++ {
		if sizes[i] >= sizes[i-1] {
			t.Errorf("candidates not strictly decreasing: %v", sizes)
		}
	}
	if sizes[len(sizes)-1] != 0 {
		t.Errorf("last candidate = %v, want 0", sizes[len(sizes)-1])
	}
	// Ticket counts match the paper's Pi = {0,4,6,8,9,10}.
	wantP := []int{0, 4, 6, 8, 9, 10}
	for i := range wantP {
		if tickets[i] != wantP[i] {
			t.Errorf("tickets = %v, want %v", tickets, wantP)
			break
		}
	}
	// Tickets non-decreasing as candidates shrink (paper's P ordering).
	for i := 1; i < len(tickets); i++ {
		if tickets[i] < tickets[i-1] {
			t.Errorf("tickets not monotone: %v", tickets)
		}
	}
}

func TestGreedyMatchesExactOnSmallInstances(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(3)
		vms := make([]VM, n)
		var peakSum float64
		for i := range vms {
			T := 3 + r.Intn(4)
			d := make(timeseries.Series, T)
			for t := range d {
				d[t] = float64(10 + r.Intn(50))
			}
			vms[i] = VM{Demand: d}
			peakSum += d.Max()
		}
		p := &Problem{
			VMs:       vms,
			Capacity:  peakSum * (0.8 + r.Float64()),
			Threshold: 0.6,
		}
		g, errG := p.Greedy()
		e, errE := p.Exact()
		if errG != nil || errE != nil {
			return errors.Is(errG, ErrInfeasible) == errors.Is(errE, ErrInfeasible)
		}
		// Greedy is a heuristic: never better than exact, and on these
		// tiny instances it should stay close (within 3 tickets).
		return g.Tickets >= e.Tickets && g.Tickets <= e.Tickets+3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: both solvers respect the capacity constraint and lower
// bounds, and report the true ticket count of their allocation.
func TestSolverInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(4)
		vms := make([]VM, n)
		var lbSum float64
		for i := range vms {
			T := 3 + r.Intn(5)
			d := make(timeseries.Series, T)
			for t := range d {
				d[t] = r.Float64() * 60
			}
			lb := 0.0
			if r.Intn(2) == 0 {
				lb = d.Max() // peak usage lower bound, as in the paper
			}
			vms[i] = VM{Demand: d, LowerBound: lb}
			lbSum += lb
		}
		p := &Problem{
			VMs:       vms,
			Capacity:  lbSum + r.Float64()*100,
			Threshold: 0.5 + r.Float64()*0.4,
			Epsilon:   float64(r.Intn(3)) * 2.5,
		}
		for _, solve := range []func() (Allocation, error){p.Greedy, p.Exact} {
			a, err := solve()
			if errors.Is(err, ErrInfeasible) {
				continue
			}
			if err != nil {
				return false
			}
			var sum float64
			for i, s := range a.Sizes {
				sum += s
				if s < p.VMs[i].LowerBound-1e-9 {
					return false
				}
			}
			if sum > p.Capacity+1e-6 {
				return false
			}
			if got := p.tickets(a.Sizes); got != a.Tickets {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTicketsLengthCheck(t *testing.T) {
	p := &Problem{
		VMs:       []VM{{Demand: timeseries.Series{1}}},
		Capacity:  10,
		Threshold: 0.6,
	}
	if _, err := p.Tickets([]float64{1, 2}); !errors.Is(err, ErrBadProblem) {
		t.Errorf("err = %v, want ErrBadProblem", err)
	}
	got, err := p.Tickets([]float64{0.5})
	if err != nil || got != 1 {
		t.Errorf("Tickets = %d, %v; want 1", got, err)
	}
}

func TestDynamicProgramMatchesExact(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(3)
		vms := make([]VM, n)
		var peakSum float64
		for i := range vms {
			T := 3 + r.Intn(4)
			d := make(timeseries.Series, T)
			for t := range d {
				d[t] = float64(10 + r.Intn(50))
			}
			vms[i] = VM{Demand: d}
			peakSum += d.Max()
		}
		p := &Problem{
			VMs:       vms,
			Capacity:  peakSum * (0.8 + r.Float64()),
			Threshold: 0.6,
		}
		e, errE := p.Exact()
		dp, errDP := p.DynamicProgram(4000)
		if errE != nil || errDP != nil {
			return errors.Is(errE, ErrInfeasible) == errors.Is(errDP, ErrInfeasible)
		}
		// Fine grid: DP within one ticket of the exhaustive optimum and
		// never better (quantization only loses capacity).
		return dp.Tickets >= e.Tickets && dp.Tickets <= e.Tickets+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDynamicProgramFeasibility(t *testing.T) {
	p := &Problem{
		VMs: []VM{
			{Demand: timeseries.Series{30, 40, 60}},
			{Demand: timeseries.Series{20, 25, 28}},
		},
		Capacity:  120,
		Threshold: 0.6,
	}
	a, err := p.DynamicProgram(500)
	if err != nil {
		t.Fatalf("DynamicProgram: %v", err)
	}
	var sum float64
	for _, s := range a.Sizes {
		sum += s
	}
	if sum > p.Capacity+1e-9 {
		t.Errorf("allocation %v exceeds capacity %v", sum, p.Capacity)
	}
	if got := p.tickets(a.Sizes); got != a.Tickets {
		t.Errorf("reported tickets %d != recomputed %d", a.Tickets, got)
	}
}

func TestDynamicProgramErrors(t *testing.T) {
	p := &Problem{
		VMs:       []VM{{Demand: timeseries.Series{10}}},
		Capacity:  100,
		Threshold: 0.6,
	}
	if _, err := p.DynamicProgram(0); !errors.Is(err, ErrBadProblem) {
		t.Errorf("zero bins err = %v", err)
	}
	// Lower bound above capacity: infeasible.
	inf := &Problem{
		VMs:       []VM{{Demand: timeseries.Series{10}, LowerBound: 200}},
		Capacity:  100,
		Threshold: 0.6,
	}
	if _, err := inf.DynamicProgram(100); !errors.Is(err, ErrInfeasible) {
		t.Errorf("infeasible err = %v", err)
	}
	// Empty problem.
	empty := &Problem{Capacity: 10, Threshold: 0.6}
	if a, err := empty.DynamicProgram(10); err != nil || len(a.Sizes) != 0 {
		t.Errorf("empty = %+v, %v", a, err)
	}
}

func TestCandidateCount(t *testing.T) {
	demand := timeseries.Series{23, 25, 30, 30, 40, 40, 60, 60, 60, 60}
	fine := &Problem{VMs: []VM{{Demand: demand}}, Capacity: 1000, Threshold: 0.6}
	coarse := &Problem{VMs: []VM{{Demand: demand}}, Capacity: 1000, Threshold: 0.6, Epsilon: 20}
	if fine.CandidateCount() != 6 {
		t.Errorf("fine count = %d, want 6", fine.CandidateCount())
	}
	if coarse.CandidateCount() >= fine.CandidateCount() {
		t.Errorf("epsilon did not shrink: %d vs %d", coarse.CandidateCount(), fine.CandidateCount())
	}
}
