package resize

import (
	"sort"
)

// Stingy returns the paper's "stingy" baseline: each VM is allocated
// exactly the lower bound — its peak demand — regardless of the ticket
// threshold ("only allocates the capacity according to the lower
// bound, i.e., the maximum demand regardless of the ticket threshold,
// often used in practice"). Allocations are clamped to the box
// capacity. The allocation may be infeasible in aggregate; like the
// practice it models, Stingy does not check.
func Stingy(p *Problem) (Allocation, error) {
	if err := p.validate(); err != nil {
		return Allocation{}, err
	}
	sizes := make([]float64, len(p.VMs))
	for i, vm := range p.VMs {
		s := vm.Demand.Max()
		if s < vm.LowerBound {
			s = vm.LowerBound
		}
		if s > p.Capacity {
			s = p.Capacity
		}
		sizes[i] = s
	}
	return Allocation{Sizes: sizes, Tickets: p.tickets(sizes)}, nil
}

// MaxMinFairness returns the classic water-filling allocation. Each
// VM's target is the ticket-free capacity max(Demand)/Threshold ("the
// demand of the smallest VM, considering its ticket threshold").
// Targets are served in increasing order: every unsatisfied VM receives
// an equal share of the remaining capacity, capped at its own target,
// so small VMs are fully protected while large VMs absorb the
// shortfall — the behaviour that lets max-min *increase* tickets on
// boxes dominated by one big VM (paper Figure 10).
func MaxMinFairness(p *Problem) (Allocation, error) {
	if err := p.validate(); err != nil {
		return Allocation{}, err
	}
	n := len(p.VMs)
	sizes := make([]float64, n)
	if n == 0 {
		return Allocation{Sizes: sizes}, nil
	}
	type req struct {
		idx    int
		target float64
	}
	reqs := make([]req, n)
	for i, vm := range p.VMs {
		// The (1+1e-12) nudge mirrors the candidate construction in
		// Greedy: a fully funded VM must not ticket at its own peak
		// due to floating-point rounding.
		target := vm.Demand.Max() / p.Threshold * (1 + 1e-12)
		if target < vm.LowerBound {
			target = vm.LowerBound
		}
		if target > p.Capacity {
			target = p.Capacity
		}
		reqs[i] = req{idx: i, target: target}
	}
	sort.Slice(reqs, func(a, b int) bool {
		if reqs[a].target != reqs[b].target {
			return reqs[a].target < reqs[b].target
		}
		return reqs[a].idx < reqs[b].idx
	})
	remaining := p.Capacity
	for k, r := range reqs {
		share := remaining / float64(n-k)
		alloc := r.target
		if alloc > share {
			alloc = share
		}
		sizes[r.idx] = alloc
		remaining -= alloc
	}
	return Allocation{Sizes: sizes, Tickets: p.tickets(sizes)}, nil
}
