package resize

import (
	"math/rand"
	"testing"

	"atm/internal/timeseries"
)

// randomProblem builds a feasible-ish random instance with n VMs and
// demand series of length T.
func randomProblem(r *rand.Rand, n, T int) *Problem {
	vms := make([]VM, n)
	var peakSum float64
	for i := range vms {
		d := make(timeseries.Series, T)
		scale := 0.5 + 4*r.Float64()
		peak := 0.0
		for t := range d {
			d[t] = scale * r.Float64()
			if d[t] > peak {
				peak = d[t]
			}
		}
		lb := 0.0
		if r.Intn(3) == 0 {
			lb = peak * r.Float64() * 0.5
		}
		vms[i] = VM{Demand: d, LowerBound: lb}
		peakSum += peak
	}
	eps := 0.0
	if r.Intn(2) == 0 {
		eps = 0.05 + 0.2*r.Float64()
	}
	threshold := 0.5 + 0.4*r.Float64()
	// Capacity between "tight" and "roomy" relative to the breakpoint
	// sum so the descent loop actually runs on most draws.
	capFrac := 0.3 + 1.2*r.Float64()
	return &Problem{
		VMs:       vms,
		Capacity:  peakSum / threshold * capFrac,
		Threshold: threshold,
		Epsilon:   eps,
	}
}

// The hull-and-heap descent must reproduce the naive rescan descent
// allocation-for-allocation: same sizes (exact float equality), same
// tickets, same error class.
func TestGreedyMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		T := 1 + r.Intn(40)
		p := randomProblem(r, n, T)
		fast, errF := p.Greedy()
		naive, errN := p.GreedyNaive()
		if (errF == nil) != (errN == nil) {
			t.Fatalf("seed %d: err mismatch %v vs %v", seed, errF, errN)
		}
		if errF != nil {
			continue
		}
		if fast.Tickets != naive.Tickets {
			t.Fatalf("seed %d: tickets %d vs naive %d", seed, fast.Tickets, naive.Tickets)
		}
		for i := range fast.Sizes {
			if fast.Sizes[i] != naive.Sizes[i] {
				t.Fatalf("seed %d: size[%d] = %v vs naive %v", seed, i, fast.Sizes[i], naive.Sizes[i])
			}
		}
	}
}

// The pooled sort+merge candidate generation must agree exactly with
// the map+per-candidate-Count reference.
func TestCandidatesMatchNaive(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		r := rand.New(rand.NewSource(3000 + seed))
		p := randomProblem(r, 1+r.Intn(6), 1+r.Intn(60))
		for i := range p.VMs {
			sizes, tickets := p.candidates(i)
			sizesN, ticketsN := p.candidatesNaive(i)
			if len(sizes) != len(sizesN) {
				t.Fatalf("seed %d vm %d: %d candidates vs naive %d", seed, i, len(sizes), len(sizesN))
			}
			for k := range sizes {
				if sizes[k] != sizesN[k] {
					t.Fatalf("seed %d vm %d: size[%d] = %v vs naive %v", seed, i, k, sizes[k], sizesN[k])
				}
				if tickets[k] != ticketsN[k] {
					t.Fatalf("seed %d vm %d: tickets[%d] = %d vs naive %d (size %v)",
						seed, i, k, tickets[k], ticketsN[k], sizes[k])
				}
			}
		}
	}
}

// Greedy on a tiny instance must still match Exact where the old tests
// guaranteed it (smoke check that the heap path did not regress
// solution quality).
func TestGreedyStillNearExact(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(5000 + seed))
		p := randomProblem(r, 1+r.Intn(4), 1+r.Intn(8))
		g, errG := p.Greedy()
		e, errE := p.Exact()
		if (errG == nil) != (errE == nil) {
			t.Fatalf("seed %d: err mismatch greedy %v exact %v", seed, errG, errE)
		}
		if errG != nil {
			continue
		}
		if g.Tickets < e.Tickets {
			t.Fatalf("seed %d: greedy %d tickets beats exact %d — exact is broken", seed, g.Tickets, e.Tickets)
		}
	}
}
