package resize

import (
	"container/heap"
	"fmt"
	"math"

	"atm/internal/obs"
)

// Solver metrics: descent steps (heap pops) per greedy solve expose
// how far over capacity the boxes start, and repair moves show how
// much the promotion/exchange pass reinvests. Counters are bumped once
// per solve with locally accumulated totals, so the descent loop stays
// allocation- and atomic-free.
var (
	greedySolves = obs.Default().Counter("atm_resize_greedy_solves_total",
		"MCKP greedy solves completed.")
	greedyHeapPops = obs.Default().Counter("atm_resize_heap_pops_total",
		"Hull-edge heap pops during greedy descents.")
	repairMoves = obs.Default().Counter("atm_resize_repair_moves_total",
		"Promotion/exchange repair moves applied after descents.")
)

// Greedy solves the MCKP with the paper's minimal-algorithm-style
// heuristic. Every VM starts at its largest candidate (fewest
// tickets); while the total exceeds the box capacity, each VM offers
// its best multi-step move — the candidate k below its current
// position o minimizing the marginal ticket reduction value
//
//	MTRV = (P[k] - P[o]) / (D'[o] - D'[k])
//
// (the hull edge from the current position; a plain one-step MTRV is
// blind to a cheap large capacity release hidden behind an expensive
// small one) — and the VM with the lowest MTRV jumps. Ties break
// toward the VM freeing more capacity, then by index, keeping the
// algorithm deterministic. Promotion/exchange repair passes then
// reinvest leftover slack.
//
// The descent's best moves always land on vertices of the lower convex
// hull of the VM's (size, tickets) candidates: from a hull vertex, the
// MTRV-minimizing candidate (ties toward more freed capacity) is the
// next hull vertex. Greedy therefore precomputes each VM's hull path
// once — using the exact same slope arithmetic and comparisons as the
// per-step scan, so the path is bit-identical — and races the per-VM
// hull edges in a min-heap keyed (MTRV asc, freed capacity desc, VM
// index asc): O(log n) per descent step instead of an O(n·K) rescan.
// GreedyNaive retains the rescan loop as the equality reference.
func (p *Problem) Greedy() (Allocation, error) {
	if err := p.validate(); err != nil {
		return Allocation{}, err
	}
	n := len(p.VMs)
	if n == 0 {
		return Allocation{Sizes: []float64{}}, nil
	}
	cand := make([][]float64, n)
	pen := make([][]int, n)
	pos := make([]int, n)
	var total float64
	for i := 0; i < n; i++ {
		cand[i], pen[i] = p.candidates(i)
		total += cand[i][0]
	}
	capTol := p.Capacity + 1e-9*math.Max(1, p.Capacity)

	var minTotal float64
	for i := 0; i < n; i++ {
		minTotal += cand[i][len(cand[i])-1]
	}
	if minTotal > capTol {
		return Allocation{}, fmt.Errorf("need %v, have %v: %w", minTotal, p.Capacity, ErrInfeasible)
	}

	// Precompute each VM's hull path from candidate 0 and seed the heap
	// with the first edge of every VM that has one.
	paths := make([][]hullEdge, n)
	h := make(edgeHeap, 0, n)
	for i := 0; i < n; i++ {
		paths[i] = hullPath(cand[i], pen[i])
		if len(paths[i]) > 0 {
			e := paths[i][0]
			e.vm, e.next = i, 1
			h = append(h, e)
		}
	}
	heap.Init(&h)

	pops := 0
	for total > capTol {
		if h.Len() == 0 {
			// No VM can step down; feasibility was checked, so this
			// cannot happen — defend anyway.
			return Allocation{}, fmt.Errorf("stuck at total %v: %w", total, ErrInfeasible)
		}
		e := heap.Pop(&h).(hullEdge)
		pops++
		i := e.vm
		total -= cand[i][pos[i]] - cand[i][e.target]
		pos[i] = e.target
		if e.next < len(paths[i]) {
			ne := paths[i][e.next]
			ne.vm, ne.next = i, e.next+1
			heap.Push(&h, ne)
		}
	}

	p.repair(cand, pen, pos, total)
	greedySolves.Inc()
	greedyHeapPops.Add(float64(pops))

	sizes := make([]float64, n)
	for i := 0; i < n; i++ {
		sizes[i] = cand[i][pos[i]]
	}
	return Allocation{Sizes: sizes, Tickets: p.tickets(sizes)}, nil
}

// hullEdge is one step of a VM's precomputed descent path: jump to
// candidate target, freeing free capacity at slope mtrv.
type hullEdge struct {
	mtrv   float64
	free   float64
	target int
	vm     int // set when the edge enters the heap
	next   int // index of the VM's next path edge
}

// hullPath walks the lower convex hull of one VM's (size, tickets)
// candidates starting from candidate 0, replaying the naive per-step
// scan's slope arithmetic and tie-breaking verbatim so the visited
// vertices — and the (mtrv, free) values the cross-VM race is keyed
// on — are bit-identical to GreedyNaive's.
func hullPath(cand []float64, pen []int) []hullEdge {
	var path []hullEdge
	o := 0
	for {
		target := -1
		mtrv := math.Inf(1)
		free := 0.0
		for k := o + 1; k < len(cand); k++ {
			f := cand[o] - cand[k]
			if f <= 0 {
				continue
			}
			m := float64(pen[k]-pen[o]) / f
			if m < mtrv || (m == mtrv && f > free) {
				target, mtrv, free = k, m, f
			}
		}
		if target == -1 {
			return path
		}
		path = append(path, hullEdge{mtrv: mtrv, free: free, target: target})
		o = target
	}
}

// edgeHeap orders hull edges the way the naive cross-VM scan resolves
// them: lowest MTRV first, then most freed capacity, then lowest VM
// index (the naive scan's first-wins behavior under strict
// comparisons).
type edgeHeap []hullEdge

func (h edgeHeap) Len() int { return len(h) }
func (h edgeHeap) Less(a, b int) bool {
	if h[a].mtrv != h[b].mtrv {
		return h[a].mtrv < h[b].mtrv
	}
	if h[a].free != h[b].free {
		return h[a].free > h[b].free
	}
	return h[a].vm < h[b].vm
}
func (h edgeHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *edgeHeap) Push(x any)   { *h = append(*h, x.(hullEdge)) }
func (h *edgeHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// repair is the shared post-descent pass ("shuffling capacity across
// VMs" in the paper's description of the minimal algorithm). Two move
// kinds, applied best-first until none improves:
//
//   - promotion: step a VM back up using leftover slack;
//   - exchange: demote VM i one step to fund promoting VM j, when
//     j's ticket gain exceeds i's ticket loss.
//
// Every applied move strictly decreases total tickets, so the loop
// terminates. pos is updated in place.
func (p *Problem) repair(cand [][]float64, pen [][]int, pos []int, total float64) {
	n := len(pos)
	tol := 1e-9 * math.Max(1, p.Capacity)
	moves := 0
	defer func() { repairMoves.Add(float64(moves)) }()
	for {
		slack := p.Capacity - total
		bestGain := 0
		bestCost := math.Inf(1)
		bestDemote, bestPromote := -1, -1
		consider := func(demote, promote, gain int, cost float64) {
			if gain > bestGain || (gain == bestGain && gain > 0 && cost < bestCost) {
				bestGain, bestCost = gain, cost
				bestDemote, bestPromote = demote, promote
			}
		}
		for j := 0; j < n; j++ {
			if pos[j] == 0 {
				continue
			}
			cost := cand[j][pos[j]-1] - cand[j][pos[j]]
			gain := pen[j][pos[j]] - pen[j][pos[j]-1]
			// Pure promotion from slack.
			if cost <= slack+tol {
				consider(-1, j, gain, cost)
			}
			// Exchange funded by demoting some other VM one step.
			for i := 0; i < n; i++ {
				if i == j || pos[i]+1 >= len(cand[i]) {
					continue
				}
				freed := cand[i][pos[i]] - cand[i][pos[i]+1]
				loss := pen[i][pos[i]+1] - pen[i][pos[i]]
				if cost <= slack+freed+tol {
					consider(i, j, gain-loss, cost-freed)
				}
			}
		}
		if bestPromote == -1 || bestGain <= 0 {
			break
		}
		if bestDemote >= 0 {
			total -= cand[bestDemote][pos[bestDemote]] - cand[bestDemote][pos[bestDemote]+1]
			pos[bestDemote]++
		}
		total += cand[bestPromote][pos[bestPromote]-1] - cand[bestPromote][pos[bestPromote]]
		pos[bestPromote]--
		moves++
	}
}

// GreedyNaive is the original descent: every step rescans all
// candidates of all VMs for the best move. O(steps·n·K) against
// Greedy's O(n·K² + steps·log n) path precompute + heap race; retained
// as the equality oracle — both solvers produce identical allocations.
func (p *Problem) GreedyNaive() (Allocation, error) {
	if err := p.validate(); err != nil {
		return Allocation{}, err
	}
	n := len(p.VMs)
	if n == 0 {
		return Allocation{Sizes: []float64{}}, nil
	}
	cand := make([][]float64, n)
	pen := make([][]int, n)
	pos := make([]int, n)
	var total float64
	for i := 0; i < n; i++ {
		cand[i], pen[i] = p.candidates(i)
		total += cand[i][0]
	}
	// Capacity comparisons tolerate accumulated floating-point error:
	// candidate sums like 16.6_ + 83.3_ can land epsilon above an exact
	// capacity of 100 and must not trigger an extra (ticket-costing)
	// step-down.
	capTol := p.Capacity + 1e-9*math.Max(1, p.Capacity)

	// Feasibility: even the smallest candidates (lower bounds) may not
	// fit.
	var minTotal float64
	for i := 0; i < n; i++ {
		minTotal += cand[i][len(cand[i])-1]
	}
	if minTotal > capTol {
		return Allocation{}, fmt.Errorf("need %v, have %v: %w", minTotal, p.Capacity, ErrInfeasible)
	}

	for total > capTol {
		best, bestTarget := -1, -1
		bestMTRV := math.Inf(1)
		bestFree := 0.0
		for i := 0; i < n; i++ {
			o := pos[i]
			// Best multi-step move for VM i: hull edge from o.
			for k := o + 1; k < len(cand[i]); k++ {
				free := cand[i][o] - cand[i][k]
				if free <= 0 {
					continue
				}
				mtrv := float64(pen[i][k]-pen[i][o]) / free
				if mtrv < bestMTRV || (mtrv == bestMTRV && free > bestFree) {
					best, bestTarget, bestMTRV, bestFree = i, k, mtrv, free
				}
			}
		}
		if best == -1 {
			return Allocation{}, fmt.Errorf("stuck at total %v: %w", total, ErrInfeasible)
		}
		total -= cand[best][pos[best]] - cand[best][bestTarget]
		pos[best] = bestTarget
	}

	p.repair(cand, pen, pos, total)

	sizes := make([]float64, n)
	for i := 0; i < n; i++ {
		sizes[i] = cand[i][pos[i]]
	}
	return Allocation{Sizes: sizes, Tickets: p.tickets(sizes)}, nil
}
