package resize

import (
	"math/rand"
	"testing"

	"atm/internal/timeseries"
)

func TestStingyAllocatesPeak(t *testing.T) {
	p := &Problem{
		VMs: []VM{
			{Demand: timeseries.Series{10, 50, 30}},
			{Demand: timeseries.Series{5, 5, 80}},
		},
		Capacity:  1000,
		Threshold: 0.6,
	}
	a, err := Stingy(p)
	if err != nil {
		t.Fatalf("Stingy: %v", err)
	}
	if a.Sizes[0] != 50 || a.Sizes[1] != 80 {
		t.Errorf("Sizes = %v, want [50 80]", a.Sizes)
	}
	// Peak-demand sizing still tickets: demand > 0.6*peak near peaks.
	if a.Tickets == 0 {
		t.Error("Stingy unexpectedly ticket-free; it ignores the threshold")
	}
}

func TestStingyRespectsLowerBound(t *testing.T) {
	p := &Problem{
		VMs:       []VM{{Demand: timeseries.Series{10}, LowerBound: 30}},
		Capacity:  100,
		Threshold: 0.6,
	}
	a, err := Stingy(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Sizes[0] != 30 {
		t.Errorf("size = %v, want lower bound 30", a.Sizes[0])
	}
}

func TestMaxMinProtectsSmallVMs(t *testing.T) {
	// One huge VM and two small ones under tight capacity: small VMs
	// must get their full ticket-free targets.
	p := &Problem{
		VMs: []VM{
			{Demand: timeseries.Series{300, 300, 300}},
			{Demand: timeseries.Series{6, 6, 6}},
			{Demand: timeseries.Series{12, 12, 12}},
		},
		Capacity:  200,
		Threshold: 0.6,
	}
	a, err := MaxMinFairness(p)
	if err != nil {
		t.Fatalf("MaxMinFairness: %v", err)
	}
	if a.Sizes[1] < 6/0.6-1e-9 {
		t.Errorf("small VM 1 shortchanged: %v", a.Sizes[1])
	}
	if a.Sizes[2] < 12/0.6-1e-9 {
		t.Errorf("small VM 2 shortchanged: %v", a.Sizes[2])
	}
	// The big VM absorbs the shortfall and keeps ticketing.
	if a.Sizes[0] >= 300/0.6 {
		t.Errorf("big VM fully satisfied under tight capacity: %v", a.Sizes[0])
	}
	if a.Tickets == 0 {
		t.Error("expected residual tickets on the big VM")
	}
}

func TestMaxMinAbundant(t *testing.T) {
	p := &Problem{
		VMs: []VM{
			{Demand: timeseries.Series{30, 40}},
			{Demand: timeseries.Series{10, 20}},
		},
		Capacity:  1000,
		Threshold: 0.6,
	}
	a, err := MaxMinFairness(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Tickets != 0 {
		t.Errorf("Tickets = %d, want 0 with abundant capacity", a.Tickets)
	}
}

func TestMaxMinEmpty(t *testing.T) {
	p := &Problem{Capacity: 10, Threshold: 0.6}
	a, err := MaxMinFairness(p)
	if err != nil || len(a.Sizes) != 0 {
		t.Errorf("empty = %+v, %v", a, err)
	}
}

// TestPolicyOrdering checks the paper's Figure 8 ordering in
// aggregate over many random boxes: ATM's greedy incurs the fewest
// tickets, max-min fairness next, stingy the most. Greedy is a
// heuristic, so individual instances may deviate slightly; the
// aggregate ordering and the per-instance optimality gap against the
// exact solver are the meaningful properties.
func TestPolicyOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	var sumG, sumMM, sumST, sumEx int
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(5)
		vms := make([]VM, n)
		var peakSum float64
		for i := range vms {
			T := 5 + r.Intn(8)
			d := make(timeseries.Series, T)
			base := r.Float64() * 50
			for t := range d {
				d[t] = base + r.Float64()*30
			}
			vms[i] = VM{Demand: d}
			peakSum += d.Max()
		}
		p := &Problem{
			VMs:       vms,
			Capacity:  peakSum * (1 + r.Float64()),
			Threshold: 0.6,
		}
		g, err := p.Greedy()
		if err != nil {
			t.Fatalf("Greedy: %v", err) // no lower bounds: must be feasible
		}
		mm, err := MaxMinFairness(p)
		if err != nil {
			t.Fatalf("MaxMinFairness: %v", err)
		}
		st, err := Stingy(p)
		if err != nil {
			t.Fatalf("Stingy: %v", err)
		}
		ex, err := p.Exact()
		if err != nil {
			t.Fatalf("Exact: %v", err)
		}
		var mmSum float64
		for _, s := range mm.Sizes {
			mmSum += s
		}
		if mmSum > p.Capacity+1e-6 {
			t.Fatalf("max-min over capacity: %v > %v", mmSum, p.Capacity)
		}
		if g.Tickets < ex.Tickets {
			t.Fatalf("greedy %d beat exact %d — exact solver is broken", g.Tickets, ex.Tickets)
		}
		sumG += g.Tickets
		sumMM += mm.Tickets
		sumST += st.Tickets
		sumEx += ex.Tickets
	}
	if !(sumG <= sumMM && sumMM <= sumST) {
		t.Errorf("aggregate ordering violated: greedy=%d maxmin=%d stingy=%d", sumG, sumMM, sumST)
	}
	// Greedy should stay near-optimal in aggregate (within 15%).
	if float64(sumG) > 1.15*float64(sumEx)+3 {
		t.Errorf("greedy aggregate %d too far from exact %d", sumG, sumEx)
	}
}
