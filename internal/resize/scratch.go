package resize

import (
	"fmt"
	"math"
)

// Scratch holds every slice a greedy solve needs, so a steady-state
// caller (the pipeline's per-box resize loop) can solve repeatedly
// without heap allocations. All buffers grow on demand and are reused
// across calls; a Scratch serves problems of any shape but must not be
// shared between concurrent solves.
type Scratch struct {
	cs    candScratch
	cand  [][]float64
	pen   [][]int
	pos   []int
	paths [][]hullEdge
	heap  []hullEdge
	sizes []float64
}

// grow ensures the per-VM slice headers cover n VMs.
func (sc *Scratch) grow(n int) {
	for len(sc.cand) < n {
		sc.cand = append(sc.cand, nil)
		sc.pen = append(sc.pen, nil)
		sc.paths = append(sc.paths, nil)
	}
	if cap(sc.pos) < n {
		sc.pos = make([]int, n)
	}
	if cap(sc.sizes) < n {
		sc.sizes = make([]float64, n)
	}
}

// GreedyInto is Greedy writing all intermediate and result state into
// the scratch: the returned Allocation's Sizes slice aliases scratch
// memory and stays valid only until the next GreedyInto call with the
// same scratch. Results are identical to Greedy — same candidates,
// same hull paths, same descent order (the heap key (mtrv, free, vm)
// is a total order, each VM holding at most one live edge), same
// repair moves.
func (p *Problem) GreedyInto(sc *Scratch) (Allocation, error) {
	if err := p.validate(); err != nil {
		return Allocation{}, err
	}
	n := len(p.VMs)
	sc.grow(n)
	if n == 0 {
		return Allocation{Sizes: sc.sizes[:0]}, nil
	}
	cand, pen := sc.cand[:n], sc.pen[:n]
	pos := sc.pos[:n]
	var total float64
	for i := 0; i < n; i++ {
		cand[i], pen[i] = p.candidatesInto(i, &sc.cs, cand[i][:0], pen[i][:0])
		pos[i] = 0
		total += cand[i][0]
	}
	capTol := p.Capacity + 1e-9*math.Max(1, p.Capacity)

	var minTotal float64
	for i := 0; i < n; i++ {
		minTotal += cand[i][len(cand[i])-1]
	}
	if minTotal > capTol {
		return Allocation{}, fmt.Errorf("need %v, have %v: %w", minTotal, p.Capacity, ErrInfeasible)
	}

	paths := sc.paths[:n]
	h := sc.heap[:0]
	for i := 0; i < n; i++ {
		// Shape-bound capacity (a hull path strictly descends the ≤
		// |Demand|+1 candidates), so path growth never reallocates in
		// steady state however the hull's edge count varies.
		if m := len(p.VMs[i].Demand) + 1; cap(paths[i]) < m {
			paths[i] = make([]hullEdge, 0, m)
		}
		paths[i] = hullPathInto(cand[i], pen[i], paths[i][:0])
		if len(paths[i]) > 0 {
			e := paths[i][0]
			e.vm, e.next = i, 1
			h = append(h, e)
		}
	}
	initEdges(h)

	pops := 0
	for total > capTol {
		if len(h) == 0 {
			return Allocation{}, fmt.Errorf("stuck at total %v: %w", total, ErrInfeasible)
		}
		var e hullEdge
		e, h = popEdge(h)
		pops++
		i := e.vm
		total -= cand[i][pos[i]] - cand[i][e.target]
		pos[i] = e.target
		if e.next < len(paths[i]) {
			ne := paths[i][e.next]
			ne.vm, ne.next = i, e.next+1
			h = pushEdge(h, ne)
		}
	}
	sc.heap = h[:0]

	p.repair(cand, pen, pos, total)
	greedySolves.Inc()
	greedyHeapPops.Add(float64(pops))

	sizes := sc.sizes[:n]
	for i := 0; i < n; i++ {
		sizes[i] = cand[i][pos[i]]
	}
	return Allocation{Sizes: sizes, Tickets: p.tickets(sizes)}, nil
}

// hullPathInto is hullPath appending into a caller-owned slice.
func hullPathInto(cand []float64, pen []int, path []hullEdge) []hullEdge {
	o := 0
	for {
		target := -1
		mtrv := math.Inf(1)
		free := 0.0
		for k := o + 1; k < len(cand); k++ {
			f := cand[o] - cand[k]
			if f <= 0 {
				continue
			}
			m := float64(pen[k]-pen[o]) / f
			if m < mtrv || (m == mtrv && f > free) {
				target, mtrv, free = k, m, f
			}
		}
		if target == -1 {
			return path
		}
		path = append(path, hullEdge{mtrv: mtrv, free: free, target: target})
		o = target
	}
}

// The manual min-heap below replaces container/heap for the scratch
// path: heap.Push/Pop box every hullEdge through an interface value,
// which is one allocation per descent step. Ordering matches
// edgeHeap.Less exactly; since (mtrv, free, vm) is a total order and
// each VM contributes at most one live edge, the pop sequence — and
// therefore the allocation — is identical to Greedy's.

func edgeLess(a, b hullEdge) bool {
	if a.mtrv != b.mtrv {
		return a.mtrv < b.mtrv
	}
	if a.free != b.free {
		return a.free > b.free
	}
	return a.vm < b.vm
}

func initEdges(h []hullEdge) {
	n := len(h)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
}

func pushEdge(h []hullEdge, e hullEdge) []hullEdge {
	h = append(h, e)
	j := len(h) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !edgeLess(h[j], h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
	return h
}

func popEdge(h []hullEdge) (hullEdge, []hullEdge) {
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	e := h[n]
	h = h[:n]
	siftDown(h, 0)
	return e, h
}

func siftDown(h []hullEdge, i int) {
	n := len(h)
	for {
		j := 2*i + 1
		if j >= n {
			return
		}
		if j2 := j + 1; j2 < n && edgeLess(h[j2], h[j]) {
			j = j2
		}
		if !edgeLess(h[j], h[i]) {
			return
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}
