// Package resize implements ATM's proactive VM resizing (paper Section
// IV): given predicted demand series for the VMs co-located on one box,
// choose per-VM capacity limits that minimize the number of usage
// tickets subject to the box's total capacity. The MILP formulation (R)
// is reduced via Lemma 4.1 to a multi-choice knapsack problem (R') —
// each VM's optimal size is one of its demand values or 0 — and solved
// greedily by marginal-ticket-reduction-value descent. A discretization
// factor ε trims the candidate sets and adds a safety margin. The
// package also provides the paper's two baselines (max-min fairness and
// the "stingy" peak-demand allocation) and an exact solver used to
// validate the greedy on small instances.
package resize

import (
	"errors"
	"fmt"
	"math"

	"atm/internal/ticket"
	"atm/internal/timeseries"
)

// Errors returned by the solvers.
var (
	// ErrInfeasible indicates the per-VM lower bounds alone exceed the
	// box capacity, so no allocation satisfies the constraints.
	ErrInfeasible = errors.New("resize: infeasible (lower bounds exceed capacity)")
	// ErrBadProblem indicates invalid problem parameters.
	ErrBadProblem = errors.New("resize: invalid problem")
)

// VM describes one co-located VM in a resizing problem.
type VM struct {
	// Demand is the (predicted) demand series over the resizing
	// window, one value per ticketing window, in capacity units
	// (GHz for CPU, GB for RAM).
	Demand timeseries.Series
	// LowerBound, if positive, is the minimum capacity the VM must
	// receive — the paper uses the VM's peak usage before resizing so
	// unfinished demand cannot spill over.
	LowerBound float64
}

// Problem is a single-resource resizing instance for one box.
type Problem struct {
	// VMs are the co-located VMs.
	VMs []VM
	// Capacity is the total available virtual capacity C at the box.
	Capacity float64
	// Threshold is the ticket threshold α (fraction of allocated
	// capacity, e.g. 0.6).
	Threshold float64
	// Epsilon is the discretization factor ε: candidate demand values
	// are rounded up to the next multiple of ε. Zero disables
	// discretization. Rounding up both trims the candidate set and
	// adds a safety margin (paper Section IV-A1).
	Epsilon float64
}

// Allocation is a solver's output.
type Allocation struct {
	// Sizes holds the chosen capacity per VM, aligned with
	// Problem.VMs.
	Sizes []float64
	// Tickets is the number of tickets the allocation incurs against
	// the problem's demand series.
	Tickets int
}

// validate checks the problem's static parameters.
func (p *Problem) validate() error {
	if p.Capacity < 0 {
		return fmt.Errorf("capacity %v: %w", p.Capacity, ErrBadProblem)
	}
	if p.Threshold <= 0 || p.Threshold > 1 {
		return fmt.Errorf("threshold %v not in (0,1]: %w", p.Threshold, ErrBadProblem)
	}
	if p.Epsilon < 0 {
		return fmt.Errorf("epsilon %v: %w", p.Epsilon, ErrBadProblem)
	}
	for i, vm := range p.VMs {
		if len(vm.Demand) == 0 {
			return fmt.Errorf("vm %d has empty demand: %w", i, ErrBadProblem)
		}
		for t, d := range vm.Demand {
			if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
				return fmt.Errorf("vm %d demand[%d] = %v: %w", i, t, d, ErrBadProblem)
			}
		}
		if vm.LowerBound < 0 {
			return fmt.Errorf("vm %d lower bound %v: %w", i, vm.LowerBound, ErrBadProblem)
		}
		// A single lower bound above the box capacity can never be
		// honored; candidate clamping would otherwise mask it.
		if vm.LowerBound > p.Capacity {
			return fmt.Errorf("vm %d lower bound %v exceeds capacity %v: %w",
				i, vm.LowerBound, p.Capacity, ErrInfeasible)
		}
	}
	return nil
}

// tickets counts tickets across all VMs for the given sizes.
func (p *Problem) tickets(sizes []float64) int {
	total := 0
	for i, vm := range p.VMs {
		total += ticket.Count(vm.Demand, sizes[i], p.Threshold)
	}
	return total
}

// Tickets exposes the allocation cost of arbitrary sizes against the
// problem's demands — used to evaluate allocations produced by
// external policies on the same footing.
func (p *Problem) Tickets(sizes []float64) (int, error) {
	if len(sizes) != len(p.VMs) {
		return 0, fmt.Errorf("resize: %d sizes for %d VMs: %w", len(sizes), len(p.VMs), ErrBadProblem)
	}
	return p.tickets(sizes), nil
}

// Exact solves the MCKP by exhaustive search over candidate choices.
// It is exponential in the number of VMs and exists to validate the
// greedy heuristic on small instances (the role CPLEX plays in the
// paper). Instances above maxExactStates candidate combinations are
// rejected.
func (p *Problem) Exact() (Allocation, error) {
	if err := p.validate(); err != nil {
		return Allocation{}, err
	}
	n := len(p.VMs)
	if n == 0 {
		return Allocation{Sizes: []float64{}}, nil
	}
	const maxExactStates = 5_000_000
	cand := make([][]float64, n)
	pen := make([][]int, n)
	states := 1
	for i := 0; i < n; i++ {
		cand[i], pen[i] = p.candidates(i)
		states *= len(cand[i])
		if states > maxExactStates {
			return Allocation{}, fmt.Errorf("resize: exact solver limit exceeded (%d+ states)", maxExactStates)
		}
	}
	// Suffix minima of the smallest candidate sizes, for feasibility
	// pruning. Same floating-point tolerance as Greedy.
	capTol := p.Capacity + 1e-9*math.Max(1, p.Capacity)
	minTail := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		minTail[i] = minTail[i+1] + cand[i][len(cand[i])-1]
	}
	if minTail[0] > capTol {
		return Allocation{}, fmt.Errorf("need %v, have %v: %w", minTail[0], p.Capacity, ErrInfeasible)
	}

	bestTickets := math.MaxInt
	bestChoice := make([]int, n)
	choice := make([]int, n)
	var rec func(i int, used float64, tickets int)
	rec = func(i int, used float64, tickets int) {
		if tickets >= bestTickets {
			return // cannot improve
		}
		if i == n {
			bestTickets = tickets
			copy(bestChoice, choice)
			return
		}
		for v := range cand[i] {
			sz := cand[i][v]
			if used+sz+minTail[i+1] > capTol {
				continue
			}
			choice[i] = v
			rec(i+1, used+sz, tickets+pen[i][v])
		}
	}
	rec(0, 0, 0)
	if bestTickets == math.MaxInt {
		return Allocation{}, ErrInfeasible
	}
	sizes := make([]float64, n)
	for i := 0; i < n; i++ {
		sizes[i] = cand[i][bestChoice[i]]
	}
	return Allocation{Sizes: sizes, Tickets: p.tickets(sizes)}, nil
}

// CandidateCount returns the total number of MCKP candidates across all
// VMs under the problem's current ε — the complexity measure the
// discretization factor exists to control.
func (p *Problem) CandidateCount() int {
	total := 0
	for i := range p.VMs {
		sizes, _ := p.candidates(i)
		total += len(sizes)
	}
	return total
}
