package resize

import (
	"errors"
	"math/rand"
	"testing"

	"atm/internal/race"
)

// TestGreedyIntoMatchesGreedy reuses one Scratch across 200 random
// problems of varying shape and checks the allocation is identical to
// the allocating solver — buffer reuse must not leak state between
// solves.
func TestGreedyIntoMatchesGreedy(t *testing.T) {
	var sc Scratch
	for seed := int64(0); seed < 200; seed++ {
		r := rand.New(rand.NewSource(900 + seed))
		n := 1 + r.Intn(12)
		T := 1 + r.Intn(40)
		p := randomProblem(r, n, T)
		want, errW := p.Greedy()
		got, errG := p.GreedyInto(&sc)
		if (errW == nil) != (errG == nil) {
			t.Fatalf("seed %d: err mismatch %v vs %v", seed, errW, errG)
		}
		if errW != nil {
			if !errors.Is(errG, ErrInfeasible) && !errors.Is(errG, ErrBadProblem) {
				t.Fatalf("seed %d: unexpected error kind %v", seed, errG)
			}
			continue
		}
		if got.Tickets != want.Tickets {
			t.Fatalf("seed %d: tickets %d vs %d", seed, got.Tickets, want.Tickets)
		}
		if len(got.Sizes) != len(want.Sizes) {
			t.Fatalf("seed %d: %d sizes vs %d", seed, len(got.Sizes), len(want.Sizes))
		}
		for i := range want.Sizes {
			if got.Sizes[i] != want.Sizes[i] {
				t.Fatalf("seed %d: size[%d] = %v vs %v", seed, i, got.Sizes[i], want.Sizes[i])
			}
		}
	}
}

// TestGreedyIntoEmptyProblem mirrors Greedy's empty-problem shape.
func TestGreedyIntoEmptyProblem(t *testing.T) {
	p := &Problem{Capacity: 10, Threshold: 0.6}
	var sc Scratch
	a, err := p.GreedyInto(&sc)
	if err != nil {
		t.Fatalf("GreedyInto: %v", err)
	}
	if len(a.Sizes) != 0 || a.Tickets != 0 {
		t.Fatalf("empty problem: got %v", a)
	}
}

// TestGreedyIntoAllocFree gates the scratch path at zero steady-state
// allocations.
func TestGreedyIntoAllocFree(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	r := rand.New(rand.NewSource(77))
	p := randomProblem(r, 10, 48)
	var sc Scratch
	if _, err := p.GreedyInto(&sc); err != nil {
		t.Fatalf("warm-up solve: %v", err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := p.GreedyInto(&sc); err != nil {
			t.Fatalf("GreedyInto: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("GreedyInto allocates %v times per solve, want 0", allocs)
	}
}
