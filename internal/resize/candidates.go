package resize

import (
	"math"
	"slices"
	"sort"
	"sync"

	"atm/internal/ticket"
)

// candScratch holds the per-call working slices of candidate
// generation. Candidate sets are rebuilt for every VM of every box —
// per-call map and slice allocations dominated the setup cost of the
// solvers — so the scratch is pooled and only the returned slices are
// freshly allocated.
type candScratch struct {
	vals   []float64
	demand []float64
}

var candPool = sync.Pool{New: func() any { return new(candScratch) }}

// candidates returns VM i's reduced candidate capacity set D'_i.
//
// The paper's Lemma 4.1 states the optimal size lies in Di ∪ {0}, but
// its own ticket-count example (Pi = {0,4,6,8,9,10} for D'i =
// {60,40,30,25,23,0}) counts a ticket when demand exceeds the
// candidate itself, which under the formulation R (ticket iff
// D_{i,t} > α·C_i) corresponds to candidates C = D/α: the ticket count
// #{t : D_{i,t} > αC} is a step function of C whose breakpoints are
// exactly the values D_{i,t}/α. We therefore build candidates as the
// unique α-scaled demand values — the rigorous version of the lemma —
// ε-rounded up, clamped into [LowerBound, Capacity], in strictly
// decreasing order, with the smallest admissible value (LowerBound, or
// 0 when unbounded) appended. Ticket counts are always evaluated
// against the ORIGINAL demands: ε applies only to the candidate sizes
// (paper: "ε is only applied on the predicted series").
//
// Deduplication is one sort plus an adjacent-equality sweep, and the
// per-candidate ticket counts come from a single merge of the
// descending candidate limits against the demand sorted descending —
// O(T log T) total instead of one ticket.Count pass per candidate —
// using the exact `demand > threshold·size` comparison ticket.Count
// uses, so counts are identical.
func (p *Problem) candidates(i int) (sizes []float64, tickets []int) {
	sc := candPool.Get().(*candScratch)
	sizes, tickets = p.candidatesInto(i, sc, nil, nil)
	candPool.Put(sc)
	return sizes, tickets
}

// candidatesInto is candidates writing into caller-provided slices
// (grown as needed) with caller-owned working scratch — the
// allocation-free form the reusable solver Scratch builds on. Results
// are identical to candidates.
func (p *Problem) candidatesInto(i int, sc *candScratch, sizes []float64, tickets []int) ([]float64, []int) {
	vm := p.VMs[i]
	vals := sc.vals[:0]
	clamp := func(v float64) float64 {
		if v < vm.LowerBound {
			v = vm.LowerBound
		}
		if v > p.Capacity {
			v = p.Capacity
		}
		return v
	}
	for _, d := range vm.Demand {
		// Breakpoint capacity: tickets step here. The (1+1e-12) nudge
		// keeps threshold*c >= d under floating-point rounding, so a
		// capacity sitting exactly on its breakpoint never tickets.
		c := d / p.Threshold * (1 + 1e-12)
		if p.Epsilon > 0 {
			c = math.Ceil(c/p.Epsilon) * p.Epsilon
		}
		vals = append(vals, clamp(c))
	}
	// The minimum admissible size: the lower bound (or 0).
	vals = append(vals, clamp(vm.LowerBound))
	sortDesc(vals)

	if cap(sizes) < len(vals) {
		sizes = make([]float64, 0, len(vals))
	}
	sizes = sizes[:0]
	for k, v := range vals {
		if k == 0 || v != sizes[len(sizes)-1] {
			sizes = append(sizes, v)
		}
	}

	// Merge ticket counting: demand sorted descending, candidate limits
	// visited in decreasing order, one monotone cursor.
	demand := append(sc.demand[:0], vm.Demand...)
	sortDesc(demand)
	if cap(tickets) < len(sizes) {
		// Capacity from the shape bound len(vals), not the deduped
		// count: one allocation per scratch lifetime, however the
		// distinct-candidate count drifts across windows.
		tickets = make([]int, 0, len(vals))
	}
	tickets = tickets[:len(sizes)]
	ptr := 0
	for k, v := range sizes {
		limit := p.Threshold * v
		if v <= 0 {
			limit = 0 // ticket.Count's degenerate no-allocation case
		}
		for ptr < len(demand) && demand[ptr] > limit {
			ptr++
		}
		tickets[k] = ptr
	}

	sc.vals, sc.demand = vals, demand
	return sizes, tickets
}

// sortDesc sorts in place, descending. slices.Sort plus an in-place
// reversal instead of sort.Sort(sort.Reverse(...)), which boxes two
// sort.Interface values per call — the multiset is identical either
// way, so downstream dedupe and merge counting see the same values.
func sortDesc(v []float64) {
	slices.Sort(v)
	for i, j := 0, len(v)-1; i < j; i, j = i+1, j-1 {
		v[i], v[j] = v[j], v[i]
	}
}

// candidatesNaive is the original reference implementation — map-based
// deduplication and one ticket.Count pass per candidate. Retained as
// the equality oracle for the pooled merge-counting path.
func (p *Problem) candidatesNaive(i int) (sizes []float64, tickets []int) {
	vm := p.VMs[i]
	seen := map[float64]bool{}
	var vals []float64
	add := func(v float64) {
		if v < vm.LowerBound {
			v = vm.LowerBound
		}
		if v > p.Capacity {
			v = p.Capacity
		}
		if !seen[v] {
			seen[v] = true
			vals = append(vals, v)
		}
	}
	for _, d := range vm.Demand {
		c := d / p.Threshold * (1 + 1e-12)
		if p.Epsilon > 0 {
			c = math.Ceil(c/p.Epsilon) * p.Epsilon
		}
		add(c)
	}
	add(vm.LowerBound)
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	tickets = make([]int, len(vals))
	for k, v := range vals {
		tickets[k] = ticket.Count(vm.Demand, v, p.Threshold)
	}
	return vals, tickets
}
