package resize

import (
	"fmt"
	"math"
)

// DynamicProgram solves the MCKP by dynamic programming over a
// discretized capacity axis with the given number of bins: dp[i][w] is
// the minimum ticket count for VMs 0..i-1 using capacity at most w
// grid units. Candidate sizes are quantized UP to the grid, so any
// returned allocation is feasible against the true capacity; with
// enough bins the result converges to Exact's. It is the second
// independent optimality oracle (pseudo-polynomial instead of
// exhaustive), used to cross-check both Exact and Greedy.
func (p *Problem) DynamicProgram(bins int) (Allocation, error) {
	if err := p.validate(); err != nil {
		return Allocation{}, err
	}
	if bins <= 0 {
		return Allocation{}, fmt.Errorf("resize: %d bins: %w", bins, ErrBadProblem)
	}
	n := len(p.VMs)
	if n == 0 {
		return Allocation{Sizes: []float64{}}, nil
	}
	grid := p.Capacity / float64(bins)
	if grid == 0 {
		grid = 1 // zero-capacity box: every weight collapses to bin 0
	}

	type item struct {
		weight  int // grid units, rounded up
		size    float64
		tickets int
	}
	groups := make([][]item, n)
	for i := 0; i < n; i++ {
		sizes, tickets := p.candidates(i)
		seen := map[int]bool{}
		for k := range sizes {
			w := int(math.Ceil(sizes[k]/grid - 1e-12))
			if w > bins {
				continue // cannot fit even alone
			}
			// Candidates arrive ticket-sorted ascending, so the first
			// candidate seen per weight is the best one.
			if seen[w] {
				continue
			}
			seen[w] = true
			groups[i] = append(groups[i], item{weight: w, size: sizes[k], tickets: tickets[k]})
		}
		if len(groups[i]) == 0 {
			return Allocation{}, fmt.Errorf("vm %d: no candidate fits %v: %w", i, p.Capacity, ErrInfeasible)
		}
	}

	const inf = math.MaxInt32
	dp := make([][]int, n+1)
	dp[0] = make([]int, bins+1) // zero VMs: zero tickets at any budget
	for i := 0; i < n; i++ {
		dp[i+1] = make([]int, bins+1)
		for w := 0; w <= bins; w++ {
			best := inf
			for _, it := range groups[i] {
				if it.weight > w {
					continue
				}
				if prev := dp[i][w-it.weight]; prev < inf && prev+it.tickets < best {
					best = prev + it.tickets
				}
			}
			dp[i+1][w] = best
		}
	}
	if dp[n][bins] >= inf {
		return Allocation{}, ErrInfeasible
	}

	// Reconstruct the choices from the table.
	sizes := make([]float64, n)
	w := bins
	for i := n - 1; i >= 0; i-- {
		found := false
		for _, it := range groups[i] {
			if it.weight > w {
				continue
			}
			if prev := dp[i][w-it.weight]; prev < inf && prev+it.tickets == dp[i+1][w] {
				sizes[i] = it.size
				w -= it.weight
				found = true
				break
			}
		}
		if !found {
			return Allocation{}, fmt.Errorf("resize: dp reconstruction failed at vm %d", i)
		}
	}
	return Allocation{Sizes: sizes, Tickets: p.tickets(sizes)}, nil
}
