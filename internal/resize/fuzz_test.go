package resize

import (
	"errors"
	"testing"

	"atm/internal/timeseries"
)

// FuzzGreedy feeds arbitrary demand values into the solver and checks
// the core invariants: no panic, capacity respected, lower bounds
// honored, reported tickets true.
func FuzzGreedy(f *testing.F) {
	f.Add(10.0, 20.0, 30.0, 50.0, 0.6, 0.0)
	f.Add(0.0, 0.0, 0.0, 1.0, 0.9, 1.0)
	f.Add(100.0, 1.0, 100.0, 90.0, 0.5, 5.0)

	f.Fuzz(func(t *testing.T, d1, d2, d3, capacity, threshold, eps float64) {
		p := &Problem{
			VMs: []VM{
				{Demand: timeseries.Series{d1, d2}},
				{Demand: timeseries.Series{d3}, LowerBound: d3 / 2},
			},
			Capacity:  capacity,
			Threshold: threshold,
			Epsilon:   eps,
		}
		a, err := p.Greedy()
		if err != nil {
			if errors.Is(err, ErrBadProblem) || errors.Is(err, ErrInfeasible) {
				return
			}
			t.Fatalf("unexpected error class: %v", err)
		}
		var sum float64
		for i, s := range a.Sizes {
			sum += s
			if s < p.VMs[i].LowerBound-1e-9 {
				t.Fatalf("size %v below lower bound %v", s, p.VMs[i].LowerBound)
			}
		}
		if sum > capacity*(1+1e-6)+1e-6 {
			t.Fatalf("allocated %v > capacity %v", sum, capacity)
		}
		if got := p.tickets(a.Sizes); got != a.Tickets {
			t.Fatalf("reported tickets %d != recomputed %d", a.Tickets, got)
		}
	})
}
