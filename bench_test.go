package atm

// Benchmark harness: one benchmark per paper figure (regenerating the
// figure's numbers end to end at a reduced scale) plus ablation
// benchmarks for the design choices DESIGN.md calls out and
// micro-benchmarks for the hot algorithms. Run:
//
//	go test -bench=. -benchmem
//
// Per-figure benchmarks exist so a regression in any algorithm's
// complexity shows up as a wall-clock change on the exact workload the
// evaluation uses.

import (
	"math/rand"
	"testing"

	"atm/internal/cluster"
	"atm/internal/experiments"
	"atm/internal/predict"
	"atm/internal/resize"
	"atm/internal/spatial"
	"atm/internal/timeseries"
	"atm/internal/trace"
)

// benchOpts is the reduced per-iteration scale for figure benchmarks.
var benchOpts = experiments.Options{Boxes: 12, Seed: 2, Days: 6, SamplesPerDay: 48}

func BenchmarkFig1Motivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2Characterization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3Correlation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5Clustering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6TwoStep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7InterIntra(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8Resizing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9FullPrediction(b *testing.B) {
	opts := experiments.Options{Boxes: 4, Seed: 2, Days: 6, SamplesPerDay: 32}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10FullATM(b *testing.B) {
	opts := experiments.Options{Boxes: 4, Seed: 2, Days: 6, SamplesPerDay: 32}
	fig9, err := experiments.Fig9(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10(opts, fig9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12Testbed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12(experiments.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13Performance(b *testing.B) {
	fig12, err := experiments.Fig12(experiments.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig13(experiments.Options{}, fig12); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations -----------------------------------------------------

// benchBoxSeries builds one box's demand series for ablations.
func benchBoxSeries(b *testing.B) []timeseries.Series {
	b.Helper()
	tr := trace.Generate(trace.GenConfig{Boxes: 1, Days: 1, Seed: 4, GapFraction: 1e-9})
	return tr.Boxes[0].DemandSeries()
}

// BenchmarkAblationCBCThreshold sweeps the CBC correlation threshold
// (paper default 0.7); lower thresholds merge more and shrink the
// signature set at the cost of fit accuracy.
func BenchmarkAblationCBCThreshold(b *testing.B) {
	series := benchBoxSeries(b)
	for _, rho := range []float64{0.5, 0.7, 0.9} {
		b.Run(float2name(rho), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := spatial.Search(series, spatial.Config{
					Method: spatial.MethodCBC, RhoTh: rho,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationVIFCutoff sweeps the stepwise-regression VIF cutoff
// (paper rule of practice: 4).
func BenchmarkAblationVIFCutoff(b *testing.B) {
	series := benchBoxSeries(b)
	for _, cutoff := range []float64{2, 4, 10} {
		b.Run(float2name(cutoff), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := spatial.Search(series, spatial.Config{
					Method: spatial.MethodCBC, VIFCutoff: cutoff,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDTWWindow compares unconstrained DTW with
// Sakoe-Chiba bands: the band cuts cost quadratically.
func BenchmarkAblationDTWWindow(b *testing.B) {
	series := benchBoxSeries(b)
	for _, w := range []int{-1, 8, 4} {
		b.Run(int2name(w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cluster.DTWMatrix(series, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationEpsilon sweeps the resizing discretization factor:
// larger ε means fewer MCKP candidates and faster solves.
func BenchmarkAblationEpsilon(b *testing.B) {
	tr := trace.Generate(trace.GenConfig{Boxes: 1, Days: 1, Seed: 6, GapFraction: 1e-9})
	box := &tr.Boxes[0]
	for _, eps := range []float64{0, 0.1, 0.5} {
		b.Run(float2name(eps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prob := &resize.Problem{
					VMs:       demandVMs(box),
					Capacity:  box.CPUCapGHz,
					Threshold: 0.6,
					Epsilon:   eps,
				}
				if _, err := prob.Greedy(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationGreedyVsExact measures the cost gap between the
// greedy MCKP heuristic and the exact solver on a small instance.
func BenchmarkAblationGreedyVsExact(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	vms := make([]resize.VM, 4)
	var peak float64
	for i := range vms {
		d := make(timeseries.Series, 8)
		for t := range d {
			d[t] = 10 + rng.Float64()*50
		}
		vms[i] = resize.VM{Demand: d}
		peak += d.Max()
	}
	prob := &resize.Problem{VMs: vms, Capacity: peak * 1.2, Threshold: 0.6}
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := prob.Greedy(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := prob.Exact(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationTemporalModels compares the pluggable temporal
// models on the same signature series: the cost asymmetry between the
// MLP and the cheap models is the paper's motivation for signature
// reduction.
func BenchmarkAblationTemporalModels(b *testing.B) {
	tr := trace.Generate(trace.GenConfig{Boxes: 1, Days: 6, Seed: 9, GapFraction: 1e-9})
	hist := tr.Boxes[0].VMs[0].Demand(trace.CPU).Slice(0, 5*96)
	spd := 96
	models := map[string]func() predict.Model{
		"seasonal-naive": func() predict.Model { return &predict.SeasonalNaive{Period: spd} },
		"seasonal-mean":  func() predict.Model { return &predict.SeasonalMean{Period: spd} },
		"ar":             func() predict.Model { return &predict.AR{P: 4, Period: spd} },
		"mlp":            func() predict.Model { return predict.DefaultMLP(spd) },
	}
	for name, factory := range models {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := factory()
				if err := m.Fit(hist); err != nil {
					b.Fatal(err)
				}
				if _, err := m.Forecast(spd); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Micro-benchmarks ------------------------------------------------

func BenchmarkDTWDistance(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	p := make(timeseries.Series, 96)
	q := make(timeseries.Series, 96)
	for i := range p {
		p[i] = rng.Float64()
		q[i] = rng.Float64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cluster.DTW(p, q)
	}
}

func BenchmarkPearson(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	p := make(timeseries.Series, 672)
	q := make(timeseries.Series, 672)
	for i := range p {
		p[i] = rng.Float64()
		q[i] = rng.Float64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := timeseries.Pearson(p, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		trace.Generate(trace.GenConfig{Boxes: 10, Days: 1, Seed: int64(i + 1)})
	}
}

func demandVMs(box *trace.Box) []resize.VM {
	demands := box.Demands(trace.CPU)
	vms := make([]resize.VM, len(demands))
	for i, d := range demands {
		vms[i] = resize.VM{Demand: d}
	}
	return vms
}

func float2name(v float64) string {
	switch {
	case v == float64(int(v)):
		return itoa(int(v))
	default:
		s := itoa(int(v*10 + 0.5))
		return "0p" + s
	}
}

func int2name(v int) string {
	if v < 0 {
		return "unbounded"
	}
	return itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationClusteringMethods compares all three step-1
// techniques on one box (the Methods experiment's core loop).
func BenchmarkAblationClusteringMethods(b *testing.B) {
	series := benchBoxSeries(b)
	for _, m := range []spatial.Method{spatial.MethodDTW, spatial.MethodCBC, spatial.MethodFeatures} {
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := spatial.Search(series, spatial.Config{Method: m, Period: 96}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRollingOnline measures one box managed online over a
// multi-day trace (the future-work extension).
func BenchmarkRollingOnline(b *testing.B) {
	tr := trace.Generate(trace.GenConfig{Boxes: 1, Days: 5, SamplesPerDay: 32, Seed: 15, GapFraction: 1e-9})
	sys := New(32, WithSeasonalNaive(), WithTrainDays(2), WithHorizonDays(1))
	for i := 0; i < b.N; i++ {
		if _, err := sys.RunRollingBox(&tr.Boxes[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeatureExtraction measures the per-series descriptor cost.
func BenchmarkFeatureExtraction(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	s := make(timeseries.Series, 672)
	for i := range s {
		s[i] = rng.Float64() * 100
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cluster.ExtractFeatures(s, 96)
	}
}
