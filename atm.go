// Package atm is the public API of the Active Ticket Managing system,
// a reproduction of "Managing Data Center Tickets: Prediction and
// Active Sizing" (Xue, Birke, Chen, Smirni — DSN 2016).
//
// ATM reduces data-center usage tickets — alerts issued when a VM's
// CPU or RAM utilization exceeds a threshold of its allocated capacity
// — by (1) predicting every co-located VM's demand from a small set of
// signature series found via time-series clustering and stepwise
// regression, and (2) proactively resizing the VMs' capacity limits by
// solving a multi-choice knapsack problem on the predicted demands.
//
// Quick start:
//
//	tr := atm.GenerateTrace(atm.TraceConfig{Boxes: 10, Days: 7})
//	sys := atm.New(tr.SamplesPerDay,
//		atm.WithMethod(atm.MethodCBC),
//		atm.WithTrainDays(5),
//	)
//	results, err := sys.Run(tr.GapFree())
//	// results[i].CPU.Reduction() is box i's CPU ticket reduction.
//
// The packages under internal/ hold the substrates (clustering,
// regression, temporal models, the MCKP solver, the synthetic trace
// generator and a MediaWiki-style testbed simulator); this package
// wires them into the paper's end-to-end pipeline.
package atm

import (
	"atm/internal/core"
	"atm/internal/predict"
	"atm/internal/spatial"
	"atm/internal/timeseries"
	"atm/internal/trace"
)

// Re-exported types: the facade accepts and returns these so callers
// never import internal packages directly.
type (
	// Series is a fixed-interval time series of float64 samples.
	Series = timeseries.Series
	// Trace is a data-center usage trace (boxes of co-located VMs).
	Trace = trace.Trace
	// Box is one physical machine and its VMs.
	Box = trace.Box
	// VM is one virtual machine's configuration and usage series.
	VM = trace.VM
	// Resource selects CPU or RAM.
	Resource = trace.Resource
	// TraceConfig parameterizes the synthetic trace generator.
	TraceConfig = trace.GenConfig
	// Result bundles ATM's outcome for one box: prediction model,
	// forecasts, per-resource resizing runs.
	Result = core.BoxResult
	// Method selects the signature-search clustering technique.
	Method = spatial.Method
	// TemporalModel is the pluggable per-signature prediction model.
	TemporalModel = predict.Model
)

// Resource and method constants.
const (
	CPU = trace.CPU
	RAM = trace.RAM
	// MethodDTW clusters signature candidates by dynamic time warping.
	MethodDTW = spatial.MethodDTW
	// MethodCBC clusters by the paper's correlation-based scheme.
	MethodCBC = spatial.MethodCBC
	// MethodFeatures clusters by k-means over extracted series
	// features — cheaper than DTW, independent of series length.
	MethodFeatures = spatial.MethodFeatures
)

// GenerateTrace produces a deterministic synthetic data-center trace
// calibrated to the paper's published workload characterization. Zero
// config fields select defaults (100 boxes, 7 days, 96 windows/day).
func GenerateTrace(cfg TraceConfig) *Trace { return trace.Generate(cfg) }

// System is a configured ATM instance.
type System struct {
	cfg core.Config
	spd int
}

// Option customizes a System.
type Option func(*System)

// WithMethod selects the clustering technique for the signature search
// (default MethodCBC, the paper's most accurate variant).
func WithMethod(m Method) Option {
	return func(s *System) { s.cfg.Spatial.Method = m }
}

// WithTemporal replaces the temporal model used for signature series
// (default: the built-in MLP neural network, as in the paper). The
// factory is invoked once per signature series.
func WithTemporal(factory func() TemporalModel) Option {
	return func(s *System) { s.cfg.Temporal = core.TemporalFactory(factory) }
}

// WithSeasonalNaive selects the cheap seasonal-naive temporal model —
// useful for large sweeps where MLP training time dominates.
func WithSeasonalNaive() Option {
	return func(s *System) {
		period := s.spd
		s.cfg.Temporal = func() predict.Model { return &predict.SeasonalNaive{Period: period} }
	}
}

// WithTrainDays sets the training history length in days (paper: 5).
func WithTrainDays(days int) Option {
	return func(s *System) { s.cfg.TrainWindows = days * s.spd }
}

// WithHorizonDays sets the prediction/resizing window in days
// (paper: 1).
func WithHorizonDays(days int) Option {
	return func(s *System) { s.cfg.Horizon = days * s.spd }
}

// WithThreshold sets the usage-ticket threshold α (default 0.6).
func WithThreshold(alpha float64) Option {
	return func(s *System) { s.cfg.Threshold = alpha }
}

// WithEpsilon sets the resizing discretization factor ε (default 5,
// the paper's evaluation setting; 0 disables discretization).
func WithEpsilon(eps float64) Option {
	return func(s *System) { s.cfg.Epsilon = eps }
}

// WithLowerBounds floors each VM's new capacity at its historical peak
// demand, preventing spill-over of unfinished work.
func WithLowerBounds() Option {
	return func(s *System) { s.cfg.UseLowerBounds = true }
}

// WithModelReuse enables cross-window model reuse for rolling runs
// (RunRollingBox): the signature set from the last full search is
// retained and subsequent windows only refit the cheap dependent-OLS
// and temporal weights, re-searching on drift or age (core.ReusePolicy
// defaults). Batch runs are unaffected — each RunBox call is a fresh
// pipeline.
func WithModelReuse() Option {
	return func(s *System) { s.cfg.Reuse = core.ReusePolicy{Enabled: true} }
}

// New returns an ATM system for traces sampled samplesPerDay times per
// day (96 in the paper), configured with the paper's evaluation
// defaults: CBC clustering, MLP temporal model, 5 training days, 1-day
// horizon, 60% threshold, ε=5.
func New(samplesPerDay int, opts ...Option) *System {
	s := &System{
		spd: samplesPerDay,
		cfg: core.Config{
			Spatial:      spatial.Config{Method: spatial.MethodCBC, Period: samplesPerDay},
			TrainWindows: 5 * samplesPerDay,
			Horizon:      samplesPerDay,
			Threshold:    0.6,
			Epsilon:      5,
		},
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Config exposes the resolved low-level configuration (useful for the
// experiment harness and for tests).
func (s *System) Config() core.Config { return s.cfg }

// RunBox executes the full ATM pipeline — signature search, spatial-
// temporal prediction, CPU and RAM resizing, evaluation — on one box.
func (s *System) RunBox(b *Box) (*Result, error) {
	return core.RunBox(b, s.spd, s.cfg)
}

// Run executes RunBox over many boxes concurrently.
func (s *System) Run(boxes []*Box) ([]*Result, error) {
	return core.Run(boxes, s.spd, s.cfg)
}

// Summary aggregates per-box results into data-center-level means —
// the numbers the paper's evaluation reports.
type Summary struct {
	// Boxes is the number of aggregated results.
	Boxes int
	// MeanMAPE is the average per-box prediction error.
	MeanMAPE float64
	// MeanPeakMAPE is the average per-box peak (above-threshold)
	// prediction error.
	MeanPeakMAPE float64
	// SignatureRatio is the average fraction of series kept as
	// signatures.
	SignatureRatio float64
	// CPUReduction and RAMReduction are the average relative ticket
	// reductions.
	CPUReduction float64
	RAMReduction float64
}

// Summarize aggregates results; nil entries are skipped.
func Summarize(results []*Result) Summary {
	var s Summary
	var mape, peak, ratio, cpuRed, ramRed float64
	var nCPU, nRAM int
	for _, r := range results {
		if r == nil {
			continue
		}
		s.Boxes++
		mape += r.MeanMAPE()
		peak += r.MeanPeakMAPE()
		ratio += r.Prediction.Model.Ratio()
		if r.CPU != nil && r.CPU.TicketsBefore > 0 {
			cpuRed += r.CPU.Reduction()
			nCPU++
		}
		if r.RAM != nil && r.RAM.TicketsBefore > 0 {
			ramRed += r.RAM.Reduction()
			nRAM++
		}
	}
	if s.Boxes == 0 {
		return s
	}
	n := float64(s.Boxes)
	s.MeanMAPE = mape / n
	s.MeanPeakMAPE = peak / n
	s.SignatureRatio = ratio / n
	if nCPU > 0 {
		s.CPUReduction = cpuRed / float64(nCPU)
	}
	if nRAM > 0 {
		s.RAMReduction = ramRed / float64(nRAM)
	}
	return s
}

// WithAutoModel selects the best temporal model per signature series by
// rolling-origin validation over the library's whole model family
// (seasonal baselines, AR, Holt-Winters, MLP).
func WithAutoModel() Option {
	return func(s *System) {
		period := s.spd
		// Validate on two half-day folds: one full day of held-out data
		// keeps even 3-day training histories usable.
		horizon := period / 2
		if horizon < 1 {
			horizon = 1
		}
		s.cfg.Temporal = func() predict.Model {
			return &predict.Auto{
				Candidates: predict.DefaultCandidates(period),
				Folds:      2,
				Horizon:    horizon,
			}
		}
	}
}

// RollingResult is one step of an online (sliding-window) ATM run.
type RollingResult = core.RollingResult

// RollingSummary aggregates an online run.
type RollingSummary = core.RollingSummary

// RunRollingBox drives ATM online over the box's whole trace: after
// the training prefix, every successive horizon window is predicted
// and resized from the most recent history — the paper's future-work
// direction of online dynamic workload management.
func (s *System) RunRollingBox(b *Box) ([]RollingResult, error) {
	return core.RunRolling(b, s.spd, s.cfg)
}

// SummarizeRolling aggregates per-step rolling results.
func SummarizeRolling(results []RollingResult) RollingSummary {
	return core.SummarizeRolling(results)
}
