// Mediawiki: the paper's Section V-B experiment on the simulated
// testbed — two 3-tier wiki applications on three nodes, load
// alternating hourly between low and high intensity. The example runs
// the cluster twice (static limits vs the ATM controller actuating
// through the cgroup daemon's HTTP API) and prints the Figure 12/13
// comparison.
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	"atm/internal/actuator"
	"atm/internal/testbed"
)

const windows = 24 // six hours of 15-minute windows

func main() {
	// Run 1: static limits.
	static, err := testbed.DefaultTopology().Run(windows, nil)
	if err != nil {
		log.Fatalf("static run: %v", err)
	}

	// Run 2: the ATM controller, actuating over the daemon's real
	// HTTP API exactly as a production deployment would.
	cluster := testbed.DefaultTopology()
	daemon := httptest.NewServer(cluster.Limits.Handler())
	defer daemon.Close()
	client, err := actuator.NewClient(daemon.URL, daemon.Client())
	if err != nil {
		log.Fatalf("actuator client: %v", err)
	}
	ctrl := testbed.NewDefaultController(client)
	managed, err := cluster.Run(windows, ctrl)
	if err != nil {
		log.Fatalf("managed run: %v", err)
	}

	from := ctrl.TrainWindows + ctrl.ResizeEvery
	fmt.Printf("comparison window: %d..%d (after %d training windows)\n\n", from, windows, from)

	fmt.Println("per-VM peak CPU utilization (static vs ATM):")
	for _, vm := range cluster.VMs {
		s := static.Usage[vm.ID].Slice(from, windows)
		m := managed.Usage[vm.ID].Slice(from, windows)
		marker := " "
		if s.Max() > 60 {
			marker = "!"
		}
		fmt.Printf("  %s %-22s %6.1f%% -> %5.1f%%\n", marker, vm.ID, s.Max(), m.Max())
	}

	before := static.Tickets(from, windows, 0.6)
	after := managed.Tickets(from, windows, 0.6)
	fmt.Printf("\nusage tickets: %d -> %d (paper: 49 -> 1)\n\n", before, after)

	for _, app := range []string{"wiki-one", "wiki-two"} {
		fmt.Printf("%s: RT %.0f ms -> %.0f ms, throughput %.1f -> %.1f req/s\n",
			app,
			1000*static.MeanRT(app, from, windows), 1000*managed.MeanRT(app, from, windows),
			static.MeanServed(app, from, windows), managed.MeanServed(app, from, windows))
	}
	fmt.Printf("\ncontroller applied %d resizing rounds over the cgroup HTTP API\n", ctrl.Resizes)
}
