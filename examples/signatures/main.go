// Signatures: a deep dive into the paper's Section III signature
// search on a single box. It shows what DTW and CBC clustering find,
// what the VIF/stepwise step removes, and how well the dependent
// series are reconstructed from the signatures.
package main

import (
	"fmt"
	"log"

	"atm"
	"atm/internal/regress"
	"atm/internal/spatial"
	"atm/internal/timeseries"
	"atm/internal/trace"
)

func main() {
	tr := atm.GenerateTrace(atm.TraceConfig{Boxes: 3, Days: 1, Seed: 11, GapFraction: 1e-9})
	box := &tr.Boxes[0]
	series := box.DemandSeries()
	fmt.Printf("box %s: %d VMs -> %d demand series (CPU+RAM interleaved)\n\n",
		box.ID, len(box.VMs), len(series))

	for _, method := range []atm.Method{atm.MethodDTW, atm.MethodCBC} {
		fmt.Printf("--- %v clustering ---\n", method)

		// Step 1 only.
		step1, err := spatial.Search(series, spatial.Config{Method: method, SkipStepwise: true})
		if err != nil {
			log.Fatalf("step 1: %v", err)
		}
		fmt.Printf("step 1: %d clusters, %d initial signatures\n",
			step1.ClusterK, len(step1.InitialSignatures))

		// VIFs of the initial signature set show any multicollinearity
		// left for step 2 to remove.
		sigSeries := make([]timeseries.Series, len(step1.InitialSignatures))
		for i, idx := range step1.InitialSignatures {
			sigSeries[i] = series[idx]
		}
		vifs, err := regress.VIF(sigSeries)
		if err != nil {
			log.Fatalf("vif: %v", err)
		}
		over := 0
		for _, v := range vifs {
			if v > regress.DefaultVIFCutoff {
				over++
			}
		}
		fmt.Printf("        %d of them have VIF > %d (collinear)\n", over, regress.DefaultVIFCutoff)

		// Both steps.
		full, err := spatial.Search(series, spatial.Config{Method: method})
		if err != nil {
			log.Fatalf("step 2: %v", err)
		}
		fitErr, err := full.FitError(series)
		if err != nil {
			log.Fatalf("fit error: %v", err)
		}
		fmt.Printf("step 2: %d final signatures (%.0f%% of all series), fit APE %.1f%%\n",
			len(full.Signatures), 100*full.Ratio(), 100*fitErr)

		for _, idx := range full.Signatures {
			vm := trace.SeriesVM(idx)
			fmt.Printf("        signature: %s/%v\n", box.VMs[vm].ID, trace.SeriesResource(idx))
		}
		fmt.Println()
	}
}
