// Datacenter: a trace-wide study in the style of the paper's
// evaluation. It generates a synthetic data center, characterizes its
// usage tickets, runs the full ATM pipeline on every gap-free box and
// prints fleet-level results.
package main

import (
	"flag"
	"fmt"
	"log"

	"atm"
)

func main() {
	boxes := flag.Int("boxes", 60, "number of boxes to simulate")
	seed := flag.Int64("seed", 7, "trace seed")
	flag.Parse()

	tr := atm.GenerateTrace(atm.TraceConfig{Boxes: *boxes, Days: 7, Seed: *seed})
	gapFree := tr.GapFree()
	fmt.Printf("generated %d boxes (%d VMs); %d are gap-free\n",
		len(tr.Boxes), tr.NumVMs(), len(gapFree))

	// Characterization: how many boxes ticket at the 60% threshold?
	ticketed := 0
	for _, b := range gapFree {
		hasTicket := false
		for i := range b.VMs {
			if b.VMs[i].CPU.CountAbove(60) > 0 {
				hasTicket = true
				break
			}
		}
		if hasTicket {
			ticketed++
		}
	}
	fmt.Printf("boxes with >= 1 CPU ticket: %d of %d (paper: ~57%%)\n", ticketed, len(gapFree))

	// Full ATM across the fleet. Seasonal-naive keeps this example
	// fast; swap in the default MLP for the paper's temporal model.
	sys := atm.New(tr.SamplesPerDay,
		atm.WithMethod(atm.MethodCBC),
		atm.WithSeasonalNaive(),
		atm.WithTrainDays(5),
		atm.WithHorizonDays(1),
		atm.WithLowerBounds(),
	)
	results, err := sys.Run(gapFree)
	if err != nil {
		log.Fatalf("datacenter: %v", err)
	}
	sum := atm.Summarize(results)
	fmt.Printf("\nfleet summary over %d boxes:\n", sum.Boxes)
	fmt.Printf("  signature ratio:      %5.1f%% of series need temporal models\n", 100*sum.SignatureRatio)
	fmt.Printf("  mean prediction APE:  %5.1f%% (peaks: %.1f%%)\n", 100*sum.MeanMAPE, 100*sum.MeanPeakMAPE)
	fmt.Printf("  CPU ticket reduction: %5.1f%%\n", 100*sum.CPUReduction)
	fmt.Printf("  RAM ticket reduction: %5.1f%%\n", 100*sum.RAMReduction)

	// The five most improved boxes.
	type scored struct {
		id  string
		red float64
	}
	var best []scored
	for _, r := range results {
		if r.CPU.TicketsBefore > 0 {
			best = append(best, scored{r.Box.ID, r.CPU.Reduction()})
		}
	}
	for i := 0; i < len(best); i++ {
		for j := i + 1; j < len(best); j++ {
			if best[j].red > best[i].red {
				best[i], best[j] = best[j], best[i]
			}
		}
	}
	fmt.Println("\nmost improved boxes (CPU):")
	for i := 0; i < len(best) && i < 5; i++ {
		fmt.Printf("  %s  %.0f%%\n", best[i].id, 100*best[i].red)
	}
}
