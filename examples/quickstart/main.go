// Quickstart: run the full ATM pipeline on one synthetic box and print
// what it did — the signature set it found, its prediction accuracy,
// and the ticket reduction from resizing.
package main

import (
	"fmt"
	"log"

	"atm"
)

func main() {
	// A small deterministic trace: 5 boxes, 7 days of 15-minute
	// samples, no monitoring gaps.
	tr := atm.GenerateTrace(atm.TraceConfig{
		Boxes:       5,
		Days:        7,
		Seed:        42,
		GapFraction: 1e-9, // effectively zero (0 selects the default)
	})

	// The paper's evaluation configuration: CBC clustering, train on 5
	// days, predict and resize the next day at a 60% ticket threshold.
	sys := atm.New(tr.SamplesPerDay,
		atm.WithMethod(atm.MethodCBC),
		atm.WithTrainDays(5),
		atm.WithHorizonDays(1),
		atm.WithThreshold(0.6),
		atm.WithLowerBounds(),
	)

	box := &tr.Boxes[0]
	res, err := sys.RunBox(box)
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}

	model := res.Prediction.Model
	fmt.Printf("box %s: %d VMs, %d demand series\n", box.ID, len(box.VMs), model.N)
	fmt.Printf("signature series: %d of %d (%.0f%%) — only these need an expensive temporal model\n",
		len(model.Signatures), model.N, 100*model.Ratio())
	fmt.Printf("mean prediction error: %.1f%% (peaks: %.1f%%)\n",
		100*res.MeanMAPE(), 100*res.MeanPeakMAPE())
	fmt.Printf("CPU tickets: %d -> %d (%.0f%% reduction)\n",
		res.CPU.TicketsBefore, res.CPU.TicketsAfter, 100*res.CPU.Reduction())
	fmt.Printf("RAM tickets: %d -> %d (%.0f%% reduction)\n",
		res.RAM.TicketsBefore, res.RAM.TicketsAfter, 100*res.RAM.Reduction())

	fmt.Println("\nnew CPU sizes (GHz):")
	for v, vm := range box.VMs {
		fmt.Printf("  %-12s %5.2f -> %5.2f\n", vm.ID, vm.CPUCapGHz, res.CPU.Sizes[v])
	}
}
