// Online: ATM as a continuous controller (the paper's future-work
// direction). A 7-day trace is managed day by day: each morning the
// system retrains on the trailing history, predicts the coming day,
// and resizes every VM — with per-series automatic temporal-model
// selection.
package main

import (
	"fmt"
	"log"

	"atm"
)

func main() {
	tr := atm.GenerateTrace(atm.TraceConfig{
		Boxes: 3, Days: 7, SamplesPerDay: 48, Seed: 21, GapFraction: 1e-9,
	})
	sys := atm.New(tr.SamplesPerDay,
		atm.WithAutoModel(), // pick the best model per signature series
		atm.WithTrainDays(3),
		atm.WithHorizonDays(1),
		atm.WithLowerBounds(),
	)

	// Manage the box with the most baseline CPU tickets.
	box := &tr.Boxes[0]
	best := -1
	for i := range tr.Boxes {
		n := 0
		for v := range tr.Boxes[i].VMs {
			n += tr.Boxes[i].VMs[v].CPU.CountAbove(60)
		}
		if n > best {
			best = n
			box = &tr.Boxes[i]
		}
	}
	steps, err := sys.RunRollingBox(box)
	if err != nil {
		log.Fatalf("online: %v", err)
	}
	fmt.Printf("box %s managed online for %d daily windows:\n\n", box.ID, len(steps))
	for _, s := range steps {
		r := s.Result
		fmt.Printf("day %d: MAPE %5.1f%% | cpu tickets %3d -> %3d | ram %3d -> %3d\n",
			s.Step+1, 100*r.MeanMAPE(),
			r.CPU.TicketsBefore, r.CPU.TicketsAfter,
			r.RAM.TicketsBefore, r.RAM.TicketsAfter)
	}
	sum := atm.SummarizeRolling(steps)
	fmt.Printf("\naggregate: tickets %d -> %d (cpu %.0f%%, ram %.0f%% reduction), mean MAPE %.1f%%\n",
		sum.TicketsBefore, sum.TicketsAfter,
		100*sum.CPUReduction, 100*sum.RAMReduction, 100*sum.MeanMAPE)
}
