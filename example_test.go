package atm_test

import (
	"fmt"

	"atm"
)

// ExampleNew shows the paper's evaluation configuration.
func ExampleNew() {
	sys := atm.New(96,
		atm.WithMethod(atm.MethodCBC),
		atm.WithTrainDays(5),
		atm.WithHorizonDays(1),
		atm.WithThreshold(0.6),
	)
	cfg := sys.Config()
	fmt.Println(cfg.TrainWindows, cfg.Horizon, cfg.Threshold)
	// Output: 480 96 0.6
}

// ExampleGenerateTrace builds a small deterministic trace.
func ExampleGenerateTrace() {
	tr := atm.GenerateTrace(atm.TraceConfig{Boxes: 3, Days: 1, SamplesPerDay: 24, Seed: 7})
	fmt.Println(len(tr.Boxes), tr.Samples())
	// Output: 3 24
}

// ExampleSystem_RunBox runs the full pipeline on one box and prints
// the structure of the outcome.
func ExampleSystem_RunBox() {
	tr := atm.GenerateTrace(atm.TraceConfig{
		Boxes: 1, Days: 3, SamplesPerDay: 24, Seed: 5, GapFraction: 1e-9,
	})
	sys := atm.New(24,
		atm.WithSeasonalNaive(), // cheap model keeps the example fast
		atm.WithTrainDays(2),
		atm.WithHorizonDays(1),
	)
	res, err := sys.RunBox(&tr.Boxes[0])
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(len(res.CPU.Sizes) == len(tr.Boxes[0].VMs))
	fmt.Println(res.Prediction.Model.Ratio() > 0)
	// Output:
	// true
	// true
}

// ExampleSummarize aggregates a fleet run.
func ExampleSummarize() {
	tr := atm.GenerateTrace(atm.TraceConfig{
		Boxes: 2, Days: 3, SamplesPerDay: 24, Seed: 9, GapFraction: 1e-9,
	})
	sys := atm.New(24, atm.WithSeasonalNaive(), atm.WithTrainDays(2), atm.WithHorizonDays(1))
	results, err := sys.Run(tr.GapFree())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sum := atm.Summarize(results)
	fmt.Println(sum.Boxes)
	// Output: 2
}
