module atm

go 1.22
