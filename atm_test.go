package atm

import (
	"testing"
)

func fastSystem(spd int, opts ...Option) *System {
	base := []Option{WithSeasonalNaive(), WithTrainDays(2), WithHorizonDays(1)}
	return New(spd, append(base, opts...)...)
}

func TestNewDefaults(t *testing.T) {
	s := New(96)
	cfg := s.Config()
	if cfg.TrainWindows != 5*96 {
		t.Errorf("TrainWindows = %d, want 480", cfg.TrainWindows)
	}
	if cfg.Horizon != 96 {
		t.Errorf("Horizon = %d, want 96", cfg.Horizon)
	}
	if cfg.Threshold != 0.6 {
		t.Errorf("Threshold = %v, want 0.6", cfg.Threshold)
	}
	if cfg.Epsilon != 5 {
		t.Errorf("Epsilon = %v, want 5", cfg.Epsilon)
	}
	if cfg.Spatial.Method != MethodCBC {
		t.Errorf("Method = %v, want CBC", cfg.Spatial.Method)
	}
}

func TestOptions(t *testing.T) {
	s := New(48,
		WithMethod(MethodDTW),
		WithTrainDays(3),
		WithHorizonDays(2),
		WithThreshold(0.8),
		WithEpsilon(10),
		WithLowerBounds(),
	)
	cfg := s.Config()
	if cfg.Spatial.Method != MethodDTW {
		t.Error("WithMethod ignored")
	}
	if cfg.TrainWindows != 144 || cfg.Horizon != 96 {
		t.Errorf("train/horizon = %d/%d, want 144/96", cfg.TrainWindows, cfg.Horizon)
	}
	if cfg.Threshold != 0.8 || cfg.Epsilon != 10 || !cfg.UseLowerBounds {
		t.Error("threshold/epsilon/lower-bound options ignored")
	}
	if cfg.Reuse.Enabled {
		t.Error("model reuse on by default; must be opt-in")
	}
	if !New(48, WithModelReuse()).Config().Reuse.Enabled {
		t.Error("WithModelReuse ignored")
	}
}

func TestEndToEnd(t *testing.T) {
	tr := GenerateTrace(TraceConfig{Boxes: 4, Days: 3, SamplesPerDay: 32, Seed: 17, GapFraction: 1e-9})
	sys := fastSystem(tr.SamplesPerDay)
	results, err := sys.Run(tr.GapFree())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4", len(results))
	}
	sum := Summarize(results)
	if sum.Boxes != 4 {
		t.Errorf("summary boxes = %d, want 4", sum.Boxes)
	}
	if sum.MeanMAPE <= 0 || sum.MeanMAPE > 1.5 {
		t.Errorf("MeanMAPE = %v, implausible", sum.MeanMAPE)
	}
	if sum.SignatureRatio <= 0 || sum.SignatureRatio > 1 {
		t.Errorf("SignatureRatio = %v, want in (0,1]", sum.SignatureRatio)
	}
}

func TestSummarizeEmptyAndNil(t *testing.T) {
	if got := Summarize(nil); got.Boxes != 0 {
		t.Errorf("empty summary = %+v", got)
	}
	if got := Summarize([]*Result{nil, nil}); got.Boxes != 0 {
		t.Errorf("nil-only summary = %+v", got)
	}
}

func TestGenerateTraceFacade(t *testing.T) {
	tr := GenerateTrace(TraceConfig{Boxes: 2, Days: 1, SamplesPerDay: 24, Seed: 5})
	if len(tr.Boxes) != 2 || tr.Samples() != 24 {
		t.Errorf("trace geometry wrong: %d boxes, %d samples", len(tr.Boxes), tr.Samples())
	}
}

func TestWithTemporalCustomModel(t *testing.T) {
	tr := GenerateTrace(TraceConfig{Boxes: 1, Days: 2, SamplesPerDay: 24, Seed: 8, GapFraction: 1e-9})
	calls := 0
	sys := New(24,
		WithTrainDays(1),
		WithHorizonDays(1),
		WithTemporal(func() TemporalModel {
			calls++
			return &countingModel{horizonValue: 10}
		}),
	)
	res, err := sys.RunBox(&tr.Boxes[0])
	if err != nil {
		t.Fatalf("RunBox: %v", err)
	}
	if calls == 0 {
		t.Error("custom temporal factory never invoked")
	}
	if calls != len(res.Prediction.Model.Signatures) {
		t.Errorf("factory calls = %d, signatures = %d", calls, len(res.Prediction.Model.Signatures))
	}
}

// countingModel is a trivial Model for factory-wiring tests.
type countingModel struct {
	horizonValue float64
	fitted       bool
}

func (c *countingModel) Name() string { return "counting" }

func (c *countingModel) Fit(history Series) error {
	c.fitted = true
	return nil
}

func (c *countingModel) Forecast(horizon int) (Series, error) {
	out := make(Series, horizon)
	for i := range out {
		out[i] = c.horizonValue
	}
	return out, nil
}
