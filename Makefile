# Build, verification and benchmark entry points. `make verify` is the
# tier-1 path: build + vet + full tests, plus the race detector on the
# packages that gained concurrency (the worker pool, the parallel DTW
# matrix and the experiment drivers). `make bench` writes the
# signature-search and resize/VIF before/after records consumed by the
# Performance section in README.md.

GO ?= go

.PHONY: build vet test race verify cover bench resizebench rollingbench benchguard ingestbench ingestguard obsbench obsguard robustbench robustguard metrics-lint loadsmoke allocgate microbench tracebench chaos conformance whatif serve

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/parallel/... ./internal/cluster/... ./internal/resize/... ./internal/regress/... ./internal/experiments/... ./internal/core/... ./internal/obs/... ./internal/score/... ./internal/control/... ./internal/resilience/... ./internal/actuator/... ./internal/state/... ./internal/engine/... ./internal/serve/... ./cmd/atmd/... ./cmd/atmcli/... ./cmd/atmload/...

verify: build vet test race

# Fault-injection suite under the race detector: retry/breaker state
# machines, chaos transport, transactional apply/rollback and the
# degraded pipeline. All fault schedules are seeded, so this is
# deterministic — a failure here is a real bug, not flake.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Flaky|Breaker|Retry|Apply|Partial|Rollback|Degraded|Panic' ./internal/resilience/... ./internal/actuator/... ./internal/core/... ./internal/parallel/...

# Backend-conformance suite under the race detector: the same
# transactional, classification and chaos scenarios (30% seeded fault
# rate) against every actuation backend — cgroups daemon over HTTP,
# the Kubernetes in-place resize fake, the simulated testbed cluster
# and the in-process registry. Seeded, so a failure is a bug.
conformance:
	$(GO) test -race -count=1 -v -run 'Conformance' ./internal/actuator/conformance/

# Dry-run smoke: proves `atmcli apply -dry-run` and the engine's
# DryRun mode perform zero mutating calls, measured by counting fake
# backends at both the HTTP layer and the Backend interface.
whatif:
	$(GO) test -count=1 -v -run 'TestApplyDryRunZeroWrites' ./cmd/atmcli/
	$(GO) test -count=1 -v -run 'TestEngineDryRunZeroWrites' ./internal/engine/
	$(GO) test -count=1 -v -run 'TestWhatIfRoute' ./internal/serve/

# Full-suite coverage profile plus the total percentage on stdout; CI
# uploads coverage.out as an artifact.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

# End-to-end signature-search benchmark on trace-shaped data; emits
# BENCH_signature_search.json plus a human-readable table.
bench:
	$(GO) run ./cmd/atmbench -sigbench BENCH_signature_search.json

# End-to-end VIF + MCKP-greedy benchmark on trace-shaped data; emits
# BENCH_resize.json plus a human-readable table.
resizebench:
	$(GO) run ./cmd/atmbench -resizebench BENCH_resize.json

# Go micro-benchmarks for the reworked kernels (allocation counts
# included; the DTW kernels and the pooled envelope path must stay at
# 0 allocs/op steady-state).
microbench:
	$(GO) test -run NONE -bench 'BenchmarkDTW|BenchmarkEnvelopeAllocs|BenchmarkOptimalCut' -benchmem ./internal/cluster/ .

# Rolling model-reuse benchmark: full search per window vs the
# incremental window-roll fast path; emits BENCH_rolling.json plus a
# human-readable table.
rollingbench:
	$(GO) run ./cmd/atmbench -rollingbench BENCH_rolling.json

# Zero-allocation gates for the incremental kernels and the arena
# step, run WITHOUT the race detector (the detector inflates
# allocation counts, so these tests skip themselves under -race).
allocgate:
	$(GO) test -count=1 -run 'AllocFree|AllocationFree' ./internal/linalg/ ./internal/regress/ ./internal/spatial/ ./internal/resize/ ./internal/core/ ./internal/engine/ ./internal/score/ ./internal/control/

# Regression gate over the checked-in rolling record: re-runs the
# benchmark and fails if the incremental fast path's speedup drops
# more than the tolerance below BENCH_rolling.json's floor, or if
# result fidelity (tickets, MAPE, search budget) breaks.
benchguard:
	$(GO) run ./cmd/atmbench -benchguard BENCH_rolling.json

# Fleet-scale ingest benchmark: single-shard fleet-scan scheduling vs
# the sharded dirty-set plane at paper scale (6160 boxes / 80K VMs);
# emits BENCH_ingest.json plus a human-readable table.
ingestbench:
	$(GO) run ./cmd/atmbench -ingestbench BENCH_ingest.json -reps 5

# Regression gate over the checked-in ingest record: re-runs the
# benchmark and fails if the sharded plane's speedup drops more than
# the tolerance below BENCH_ingest.json's floor, if fidelity breaks
# (steps/plans diverge between planes), if throughput falls below the
# paper fleet's telemetry rate, or if dirty passes stop being O(chunk).
# Tolerance is wider than benchguard's because the wall-clock ratio of
# two multi-second runs is noisier than the rolling microbench.
ingestguard:
	$(GO) run ./cmd/atmbench -ingestguard BENCH_ingest.json -tolerance 0.45

# Observability self-overhead benchmark: the streaming hot loop bare
# vs fully instrumented (spans + decision events + trace adoption);
# emits BENCH_obs.json plus a human-readable table.
obsbench:
	$(GO) run ./cmd/atmbench -obsbench BENCH_obs.json -reps 5

# Self-overhead gate: re-measures and fails if the instrumented hot
# loop costs more than ObsOverheadBudget (15%) over the bare loop, if
# instrumentation changed any published plan, or if the plane recorded
# no spans/events. The budget is absolute, so the gate cannot drift.
# Reps are higher than obsbench's because the gate takes the median
# ratio of interleaved pairs and more pairs tighten it against noise.
obsguard:
	$(GO) run ./cmd/atmbench -obsguard BENCH_obs.json -reps 7

# Robust-control frontier benchmark: fixed trust λ ∈ {0, ¼, ½, ¾, 1}
# vs the drift-adaptive controller on stationary + adversarial traces
# (regime change, flash crowd, telemetry poisoning); emits
# BENCH_robust.json plus fig_robust_frontier.svg.
robustbench:
	$(GO) run ./cmd/atmbench -robustbench BENCH_robust.json

# Robustness gate over the checked-in frontier: re-runs the sweep and
# fails if λ=1 stops being bit-identical to the control-off engine on
# the stationary trace, if the adaptive controller's tickets exceed
# the best fixed endpoint min(λ=0, λ=1) plus tolerance on any family,
# or if it drifts above its own recorded frontier.
robustguard:
	$(GO) run ./cmd/atmbench -robustguard BENCH_robust.json

# Prometheus exposition conformance: atm_ metric naming, HELP/TYPE
# lines, and shard-label cardinality, checked against a live scrape.
metrics-lint:
	$(GO) test -count=1 -run TestMetricsExpositionConformance ./cmd/atmd/

# Load-harness smoke: atmload boots the production service in-process,
# runs a short deterministic load through real HTTP, and fails unless
# every accepted sample is accounted for and the engine plans the
# fleet.
loadsmoke:
	$(GO) run ./cmd/atmload -selftest

# One fully traced box-resize; emits trace.jsonl (the JSONL span dump)
# plus the per-stage latency table.
tracebench:
	$(GO) run ./cmd/atmbench -trace trace.jsonl

# Boot the streaming ATM service against a freshly generated demo
# trace: tracegen writes the trace, atmd serves the ingestion/planning
# API (with reuse + actuation on), and `atmcli stream` is the matching
# replay client. Ctrl-C drains and exits.
serve:
	$(GO) run ./cmd/tracegen -boxes 4 -days 3 -windows 32 -gaps 0 -o demo_trace.csv
	@echo "atmd on :8023 — replay with:"
	@echo "  go run ./cmd/atmcli stream -trace demo_trace.csv -daemon http://localhost:8023 -rate 200"
	$(GO) run ./cmd/atmd -serve -train 64 -horizon 32 -spd 32 -reuse -actuate
