package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestLimiterRate checks the token bucket enforces its long-run rate:
// draining well past the burst must take roughly tokens/rate seconds.
func TestLimiterRate(t *testing.T) {
	l := newLimiter(1000, 100)
	ctx := context.Background()
	start := time.Now()
	total := 0.0
	for total < 600 {
		if err := l.wait(ctx, 50); err != nil {
			t.Fatal(err)
		}
		total += 50
	}
	elapsed := time.Since(start)
	// 600 tokens at 1000/s with a 100 burst: at least ~450ms of pacing.
	if elapsed < 400*time.Millisecond {
		t.Errorf("drained %v tokens in %v: limiter not pacing", total, elapsed)
	}
	if elapsed > 3*time.Second {
		t.Errorf("limiter too slow: %v", elapsed)
	}
}

// TestLimiterContext checks a canceled context unblocks wait.
func TestLimiterContext(t *testing.T) {
	l := newLimiter(1, 1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_ = l.wait(context.Background(), 1) // drain the bucket
		done <- l.wait(ctx, 1)
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Error("wait returned nil after cancel")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("wait did not observe cancellation")
	}
}

// TestLimiterUnlimited checks rate 0 never blocks.
func TestLimiterUnlimited(t *testing.T) {
	l := newLimiter(0, 1)
	for i := 0; i < 1000; i++ {
		if err := l.wait(context.Background(), 1e9); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBackoff checks the growth/cap/jitter/reset contract.
func TestBackoff(t *testing.T) {
	b := newBackoff(10*time.Millisecond, 80*time.Millisecond, 7)
	prevCap := time.Duration(0)
	for i := 0; i < 6; i++ {
		d := b.next()
		if d <= 0 || d > 80*time.Millisecond {
			t.Fatalf("attempt %d: delay %v outside (0, 80ms]", i, d)
		}
		if b.cur < prevCap {
			t.Fatalf("attempt %d: window shrank %v -> %v", i, prevCap, b.cur)
		}
		prevCap = b.cur
	}
	if b.cur != 80*time.Millisecond {
		t.Errorf("window did not reach the cap: %v", b.cur)
	}
	b.reset()
	b.next()
	if b.cur != 10*time.Millisecond {
		t.Errorf("reset did not shrink the window: %v", b.cur)
	}
}

// TestLatencyQuantiles checks the recorder's quantile math on a known
// distribution.
func TestLatencyQuantiles(t *testing.T) {
	var l latencies
	for i := 1; i <= 100; i++ {
		l.record(time.Duration(i) * time.Millisecond)
	}
	q := l.quantiles(0.5, 0.99)
	if q[0] < 0.045 || q[0] > 0.055 {
		t.Errorf("p50 = %v, want ~0.050", q[0])
	}
	if q[1] < 0.095 || q[1] > 0.100 {
		t.Errorf("p99 = %v, want ~0.099", q[1])
	}
	var empty latencies
	q = empty.quantiles(0.5)
	if q[0] != 0 {
		t.Errorf("empty recorder p50 = %v", q[0])
	}
}

// TestFleetDeterminism checks the synthetic workload replays the same
// byte stream for the same seed and differs across seeds.
func TestFleetDeterminism(t *testing.T) {
	a := fleet{boxes: 4, vms: 3, spd: 96, seed: 5}
	b := fleet{boxes: 4, vms: 3, spd: 96, seed: 5}
	c := fleet{boxes: 4, vms: 3, spd: 96, seed: 6}
	cpu1, ram1 := make([]float64, 3), make([]float64, 3)
	cpu2, ram2 := make([]float64, 3), make([]float64, 3)
	diff := false
	for tk := 0; tk < 50; tk++ {
		a.fill(2, tk, cpu1, ram1)
		b.fill(2, tk, cpu2, ram2)
		for v := range cpu1 {
			if cpu1[v] != cpu2[v] || ram1[v] != ram2[v] {
				t.Fatalf("tick %d vm %d: same seed diverged", tk, v)
			}
			if cpu1[v] < 0 || ram1[v] < 0 {
				t.Fatalf("tick %d vm %d: negative usage", tk, v)
			}
		}
		c.fill(2, tk, cpu2, ram2)
		for v := range cpu1 {
			if cpu1[v] != cpu2[v] {
				diff = true
			}
		}
	}
	if !diff {
		t.Error("different seeds produced identical streams")
	}
	if a.boxID(17) != "load-box-00017" {
		t.Errorf("boxID(17) = %q", a.boxID(17))
	}
}

// TestRunLoadBackoff points the harness at a server that 429s the
// first attempts: the workers must back off, retry, and finish with
// retries recorded and zero hard errors.
func TestRunLoadBackoff(t *testing.T) {
	var n atomic.Int64
	mux := http.NewServeMux()
	var svcHits atomic.Int64
	mux.HandleFunc("/v1/ingest", func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%3 == 1 {
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		svcHits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"accepted": 1, "failed": 0, "boxes": []}`))
	})
	mux.HandleFunc("/v1/boxes/", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		_, _ = w.Write([]byte(`{"error": "no plan yet"}`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	cfg := loadConfig{
		boxes: 8, vms: 2, spd: 8, duration: 500 * time.Millisecond,
		rate: 0, burst: 64, workers: 2, batch: 2, ticks: 2,
		planRate: 100, planWorkers: 1, seed: 3,
	}
	rep := runLoad(context.Background(), cfg, srv.URL, srv.Client())
	if rep.IngestRetries == 0 {
		t.Error("no retries recorded against a 429-ing server")
	}
	if rep.IngestErrors != 0 {
		t.Errorf("%d hard errors: backoff should have absorbed the 429s", rep.IngestErrors)
	}
	if rep.TicksAccepted == 0 {
		t.Error("nothing accepted")
	}
	if rep.PlanReqs == 0 {
		t.Error("no plan traffic")
	}
}
