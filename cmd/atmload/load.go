package main

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// limiter is a token-bucket rate limiter: tokens accrue at rate per
// second up to burst, and wait blocks until n tokens are available.
// Each ingest worker owns one, so a slow endpoint never lets one
// worker's backlog starve the others' budgets.
type limiter struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newLimiter(rate, burst float64) *limiter {
	if burst < 1 {
		burst = 1
	}
	return &limiter{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

// wait blocks until n tokens are available (n is clamped to the burst
// so oversized requests still eventually pass) or the context ends.
func (l *limiter) wait(ctx context.Context, n float64) error {
	if l.rate <= 0 {
		return ctx.Err() // unlimited
	}
	if n > l.burst {
		n = l.burst
	}
	for {
		l.mu.Lock()
		now := time.Now()
		l.tokens = math.Min(l.burst, l.tokens+now.Sub(l.last).Seconds()*l.rate)
		l.last = now
		if l.tokens >= n {
			l.tokens -= n
			l.mu.Unlock()
			return nil
		}
		sleep := time.Duration((n - l.tokens) / l.rate * float64(time.Second))
		l.mu.Unlock()
		if sleep < time.Millisecond {
			sleep = time.Millisecond
		}
		t := time.NewTimer(sleep)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}

// backoff implements capped exponential backoff with full jitter, the
// adaptive response to 429/5xx: the deadline doubles per consecutive
// failure and resets on the first success.
type backoff struct {
	base, max time.Duration
	cur       time.Duration
	rng       *rand.Rand
}

func newBackoff(base, max time.Duration, seed int64) *backoff {
	return &backoff{base: base, max: max, rng: rand.New(rand.NewSource(seed))}
}

func (b *backoff) next() time.Duration {
	if b.cur == 0 {
		b.cur = b.base
	} else {
		b.cur *= 2
		if b.cur > b.max {
			b.cur = b.max
		}
	}
	return time.Duration(b.rng.Int63n(int64(b.cur))) + 1
}

func (b *backoff) reset() { b.cur = 0 }

// sleep waits out a backoff delay or the context, whichever first.
func (b *backoff) sleep(ctx context.Context) error {
	t := time.NewTimer(b.next())
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// latencies records request durations for quantile reporting. The
// sample buffer is capped; past the cap only count/sum keep growing,
// which is fine for a minutes-long load run.
type latencies struct {
	mu      sync.Mutex
	samples []float64 // seconds
	count   int64
	sum     float64
}

const latencyCap = 1 << 17

func (l *latencies) record(d time.Duration) {
	s := d.Seconds()
	l.mu.Lock()
	if len(l.samples) < latencyCap {
		l.samples = append(l.samples, s)
	}
	l.count++
	l.sum += s
	l.mu.Unlock()
}

// quantiles returns the requested quantiles in one sorted pass.
func (l *latencies) quantiles(qs ...float64) []float64 {
	l.mu.Lock()
	cp := append([]float64(nil), l.samples...)
	l.mu.Unlock()
	out := make([]float64, len(qs))
	if len(cp) == 0 {
		return out
	}
	sort.Float64s(cp)
	for i, q := range qs {
		k := int(q * float64(len(cp)-1))
		out[i] = cp[k]
	}
	return out
}

// fleet is the synthetic workload shape: boxes × VMs sampled spd times
// a day. Tick values are a deterministic diurnal wave plus seeded
// noise, so two runs with the same seed replay the same byte stream.
type fleet struct {
	boxes, vms, spd int
	seed            int64
}

func (f fleet) boxID(i int) string {
	const digits = "0123456789"
	var b [14]byte
	copy(b[:], "load-box-")
	for k := 4; k >= 0; k-- {
		b[9+k] = digits[i%10]
		i /= 10
	}
	return string(b[:])
}

// fill writes tick values for box bi at tick index t into cpu/ram
// (len = vms) using a cheap hash-based noise so no per-box RNG state
// is needed.
func (f fleet) fill(bi, t int, cpu, ram []float64) {
	phase := 2 * math.Pi * float64(t%f.spd) / float64(f.spd)
	for v := range cpu {
		h := uint64(f.seed)*0x9e3779b97f4a7c15 + uint64(bi)*0x517cc1b727220a95 +
			uint64(v)*0x2545f4914f6cdd1d + uint64(t)*0xbf58476d1ce4e5b9
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		noise := float64(h%1000)/1000*10 - 5
		cpu[v] = math.Max(0, 35+25*math.Sin(phase)+noise)
		ram[v] = math.Max(0, 50+15*math.Sin(phase+1.3)+noise/2)
	}
}
