// Command atmload is the fleet-scale load harness for the streaming
// ATM daemon: it drives the batched ingestion API (/v1/ingest) and
// concurrent plan-query traffic (/v1/boxes/{id}/plan) against a
// running atmd -serve instance and reports the sustained ingest
// throughput (samples/s, MB/s) and plan QPS with p50/p99 latency.
//
// Usage:
//
//	atmload -daemon http://host:8023 -boxes 500 -vms 13 -duration 30s \
//	        [-rate 50000] [-burst 5000] [-workers 8] [-batch 32] [-ticks 4] \
//	        [-plan-rate 100] [-plan-workers 2] [-spd 96] [-seed 1] [-json]
//	atmload -selftest
//
// A sample is one VM's (cpu, ram) reading for one 15-minute interval;
// -rate budgets samples per second across all ingest workers (0 =
// unlimited). Each worker paces itself with a token bucket (burst
// capacity -burst) and adapts to 429/5xx or transport errors with
// capped exponential backoff and full jitter. -selftest boots the
// production service in-process, runs a short deterministic load, and
// exits nonzero unless every accepted sample is accounted for in the
// store and the engine plans the fleet.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"atm/internal/core"
	"atm/internal/engine"
	"atm/internal/obs"
	"atm/internal/predict"
	"atm/internal/serve"
	"atm/internal/spatial"
	"atm/internal/state"
)

type loadConfig struct {
	daemon          string
	boxes, vms, spd int
	duration        time.Duration
	rate, burst     float64
	workers         int
	batch, ticks    int
	planRate        float64
	planWorkers     int
	seed            int64
	jsonOut         bool
	selftest        bool
}

// stats is the shared run ledger; everything is atomic so workers
// never serialize on reporting.
type stats struct {
	ingestReqs    atomic.Int64
	ingestRetries atomic.Int64
	ingestErrors  atomic.Int64 // non-retryable request failures
	boxErrors     atomic.Int64 // per-box errors inside 200 responses
	accepted      atomic.Int64 // ticks accepted across all boxes
	bytesSent     atomic.Int64
	planReqs      atomic.Int64
	planOK        atomic.Int64
	planErrors    atomic.Int64

	ingestLat latencies
	planLat   latencies
}

// report is the machine-readable summary printed at the end of a run.
type report struct {
	DurationSec   float64 `json:"duration_sec"`
	IngestReqs    int64   `json:"ingest_requests"`
	IngestRetries int64   `json:"ingest_retries"`
	IngestErrors  int64   `json:"ingest_errors"`
	BoxErrors     int64   `json:"box_errors"`
	TicksAccepted int64   `json:"ticks_accepted"`
	SamplesPerSec float64 `json:"samples_per_sec"`
	MBPerSec      float64 `json:"mb_per_sec"`
	IngestP50Ms   float64 `json:"ingest_p50_ms"`
	IngestP99Ms   float64 `json:"ingest_p99_ms"`
	PlanReqs      int64   `json:"plan_requests"`
	PlanQPS       float64 `json:"plan_qps"`
	PlanErrors    int64   `json:"plan_errors"`
	PlanP50Ms     float64 `json:"plan_p50_ms"`
	PlanP99Ms     float64 `json:"plan_p99_ms"`
}

func (s *stats) report(elapsed time.Duration, vms int) report {
	iq := s.ingestLat.quantiles(0.5, 0.99)
	pq := s.planLat.quantiles(0.5, 0.99)
	sec := elapsed.Seconds()
	return report{
		DurationSec:   sec,
		IngestReqs:    s.ingestReqs.Load(),
		IngestRetries: s.ingestRetries.Load(),
		IngestErrors:  s.ingestErrors.Load(),
		BoxErrors:     s.boxErrors.Load(),
		TicksAccepted: s.accepted.Load(),
		SamplesPerSec: float64(s.accepted.Load()*int64(vms)) / sec,
		MBPerSec:      float64(s.bytesSent.Load()) / sec / (1 << 20),
		IngestP50Ms:   iq[0] * 1e3,
		IngestP99Ms:   iq[1] * 1e3,
		PlanReqs:      s.planReqs.Load(),
		PlanQPS:       float64(s.planReqs.Load()) / sec,
		PlanErrors:    s.planErrors.Load(),
		PlanP50Ms:     pq[0] * 1e3,
		PlanP99Ms:     pq[1] * 1e3,
	}
}

func (r report) print(w *os.File) {
	fmt.Fprintf(w, "ingest: %d reqs (%d retries, %d errors, %d box errors) in %.1fs\n",
		r.IngestReqs, r.IngestRetries, r.IngestErrors, r.BoxErrors, r.DurationSec)
	fmt.Fprintf(w, "        %d ticks accepted · %.0f samples/s · %.2f MB/s · p50 %.2fms p99 %.2fms\n",
		r.TicksAccepted, r.SamplesPerSec, r.MBPerSec, r.IngestP50Ms, r.IngestP99Ms)
	fmt.Fprintf(w, "plans:  %d reqs · %.1f QPS (%d errors) · p50 %.2fms p99 %.2fms\n",
		r.PlanReqs, r.PlanQPS, r.PlanErrors, r.PlanP50Ms, r.PlanP99Ms)
}

// retryable says whether an ingest attempt should back off and retry.
func retryable(status int, err error) bool {
	if err != nil {
		return true // transport-level failure
	}
	return status == http.StatusTooManyRequests || status >= 500
}

// ingestWorker drives one slice of the fleet through /v1/ingest.
type ingestWorker struct {
	cfg        loadConfig
	fl         fleet
	client     *http.Client
	base       string
	st         *stats
	lim        *limiter
	bo         *backoff
	boxLo      int // [boxLo, boxHi) partition of the fleet
	boxHi      int
	registered []bool
	tick       []int // next tick index per box (relative to boxLo)
}

const maxAttempts = 8

func (w *ingestWorker) run(ctx context.Context) {
	cursor := w.boxLo
	cpu := make([]float64, w.cfg.vms)
	ram := make([]float64, w.cfg.vms)
	var body bytes.Buffer
	for ctx.Err() == nil {
		// Assemble the next batch: w.cfg.batch boxes round-robin through
		// this worker's partition, w.cfg.ticks samples each.
		req := serve.BatchRequest{}
		for b := 0; b < w.cfg.batch; b++ {
			bi := cursor
			cursor++
			if cursor >= w.boxHi {
				cursor = w.boxLo
			}
			entry := serve.BatchEntry{ID: w.fl.boxID(bi)}
			if !w.registered[bi-w.boxLo] {
				meta := state.BoxMeta{ID: entry.ID, CPUCapGHz: 2.4 * float64(w.cfg.vms), RAMCapGB: 16 * float64(w.cfg.vms)}
				for v := 0; v < w.cfg.vms; v++ {
					meta.VMs = append(meta.VMs, state.VMMeta{
						ID: fmt.Sprintf("%s-vm%02d", entry.ID, v), CPUCapGHz: 2.4, RAMCapGB: 16,
					})
				}
				entry.Box = &meta
			}
			for k := 0; k < w.cfg.ticks; k++ {
				t := w.tick[bi-w.boxLo] + k
				tk := serve.Tick{CPU: make([]float64, w.cfg.vms), RAM: make([]float64, w.cfg.vms)}
				w.fl.fill(bi, t, cpu, ram)
				copy(tk.CPU, cpu)
				copy(tk.RAM, ram)
				entry.Samples = append(entry.Samples, tk)
			}
			req.Boxes = append(req.Boxes, entry)
		}
		// One tick of one box carries vms samples (a cpu+ram pair per VM).
		budget := float64(w.cfg.batch * w.cfg.ticks * w.cfg.vms)
		if err := w.lim.wait(ctx, budget); err != nil {
			return
		}
		body.Reset()
		if err := json.NewEncoder(&body).Encode(req); err != nil {
			w.st.ingestErrors.Add(1)
			continue
		}
		resp, ok := w.post(ctx, body.Bytes())
		if !ok {
			continue
		}
		// Success: advance the per-box cursors and credit the batch.
		for _, e := range req.Boxes {
			idx := w.indexOf(e.ID)
			w.registered[idx] = true
			w.tick[idx] += len(e.Samples)
		}
		w.st.accepted.Add(int64(resp.Accepted))
		w.st.boxErrors.Add(int64(resp.Failed))
	}
}

// indexOf recovers the partition-relative index from a box id this
// worker generated (the numeric suffix).
func (w *ingestWorker) indexOf(id string) int {
	n := 0
	for i := len(id) - 5; i < len(id); i++ {
		n = n*10 + int(id[i]-'0')
	}
	return n - w.boxLo
}

// post sends one batch with retry/backoff; returns the decoded
// response and whether the batch ultimately landed.
func (w *ingestWorker) post(ctx context.Context, body []byte) (serve.BatchResponse, bool) {
	var out serve.BatchResponse
	for attempt := 0; attempt < maxAttempts; attempt++ {
		start := time.Now()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+"/v1/ingest", bytes.NewReader(body))
		if err != nil {
			w.st.ingestErrors.Add(1)
			return out, false
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := w.client.Do(req)
		w.st.ingestReqs.Add(1)
		status := 0
		if err == nil {
			status = resp.StatusCode
		}
		if retryable(status, err) {
			if err == nil {
				resp.Body.Close()
			}
			w.st.ingestRetries.Add(1)
			if ctx.Err() != nil || w.bo.sleep(ctx) != nil {
				return out, false
			}
			continue
		}
		w.ingestLatency(start)
		w.st.bytesSent.Add(int64(len(body)))
		defer resp.Body.Close()
		if status != http.StatusOK {
			w.st.ingestErrors.Add(1)
			return out, false
		}
		w.bo.reset()
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			w.st.ingestErrors.Add(1)
			return out, false
		}
		return out, true
	}
	w.st.ingestErrors.Add(1)
	return out, false
}

func (w *ingestWorker) ingestLatency(start time.Time) {
	w.st.ingestLat.record(time.Since(start))
}

// planWorker issues GET /v1/boxes/{id}/plan round-robin across the
// fleet, sharing one limiter across all plan workers.
type planWorker struct {
	cfg    loadConfig
	fl     fleet
	client *http.Client
	base   string
	st     *stats
	lim    *limiter
	offset int
}

func (w *planWorker) run(ctx context.Context) {
	i := w.offset
	for ctx.Err() == nil {
		if err := w.lim.wait(ctx, 1); err != nil {
			return
		}
		id := w.fl.boxID(i % w.cfg.boxes)
		i++
		start := time.Now()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.base+"/v1/boxes/"+id+"/plan", nil)
		if err != nil {
			w.st.planErrors.Add(1)
			continue
		}
		resp, err := w.client.Do(req)
		w.st.planReqs.Add(1)
		if err != nil {
			w.st.planErrors.Add(1)
			continue
		}
		w.st.planLat.record(time.Since(start))
		// 404 before the first plan is the API working as documented,
		// not an error.
		if resp.StatusCode == http.StatusOK {
			w.st.planOK.Add(1)
		} else if resp.StatusCode != http.StatusNotFound {
			w.st.planErrors.Add(1)
		}
		resp.Body.Close()
	}
}

// runLoad executes the configured load against base and returns the
// final report.
func runLoad(ctx context.Context, cfg loadConfig, base string, client *http.Client) report {
	st := &stats{}
	fl := fleet{boxes: cfg.boxes, vms: cfg.vms, spd: cfg.spd, seed: cfg.seed}
	ctx, cancel := context.WithTimeout(ctx, cfg.duration)
	defer cancel()

	perWorker := cfg.boxes / cfg.workers
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.workers; i++ {
		lo, hi := i*perWorker, (i+1)*perWorker
		if i == cfg.workers-1 {
			hi = cfg.boxes
		}
		if lo >= hi {
			continue
		}
		w := &ingestWorker{
			cfg: cfg, fl: fl, client: client, base: base, st: st,
			lim:   newLimiter(cfg.rate/float64(cfg.workers), cfg.burst),
			bo:    newBackoff(5*time.Millisecond, 2*time.Second, cfg.seed+int64(i)),
			boxLo: lo, boxHi: hi,
			registered: make([]bool, hi-lo),
			tick:       make([]int, hi-lo),
		}
		wg.Add(1)
		go func() { defer wg.Done(); w.run(ctx) }()
	}
	planLim := newLimiter(cfg.planRate, cfg.planRate)
	for i := 0; i < cfg.planWorkers; i++ {
		w := &planWorker{cfg: cfg, fl: fl, client: client, base: base, st: st, lim: planLim,
			offset: i * cfg.boxes / max(1, cfg.planWorkers)}
		wg.Add(1)
		go func() { defer wg.Done(); w.run(ctx) }()
	}
	wg.Wait()
	return st.report(time.Since(start), cfg.vms)
}

// selftest boots the production service in-process, runs a short
// deterministic load through real HTTP, and verifies the books
// balance: every accepted tick is in the store, and one engine pass
// plans every box that has enough history.
func selftest(cfg loadConfig) error {
	spd := 8
	ecfg := engine.Config{
		Core: core.Config{
			Spatial:      spatial.Config{Method: spatial.MethodCBC},
			Temporal:     func() predict.Model { return &predict.SeasonalNaive{Period: spd} },
			TrainWindows: 2 * spd,
			Horizon:      spd,
			Threshold:    0.6,
			Epsilon:      0.1,
			Degraded:     true,
		},
		SamplesPerDay: spd,
	}
	svc, err := serve.New(serve.Config{
		History: 4 * (ecfg.Core.TrainWindows + ecfg.Core.Horizon),
		Engine:  ecfg,
	})
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.Handle("/v1/boxes/", svc.Handler())
	mux.Handle("/v1/ingest", svc.IngestHandler())
	mux.Handle("/v1/events", svc.EventsHandler())
	mux.Handle("/readyz", svc.ReadyzHandler())
	mux.Handle("/metrics", obs.Handler())
	srv := httptest.NewServer(mux)
	defer srv.Close()

	rep := runLoad(context.Background(), cfg, srv.URL, srv.Client())
	rep.print(os.Stdout)

	if rep.IngestErrors > 0 || rep.BoxErrors > 0 {
		return fmt.Errorf("selftest: %d ingest errors, %d box errors", rep.IngestErrors, rep.BoxErrors)
	}
	if rep.TicksAccepted == 0 {
		return fmt.Errorf("selftest: no ticks accepted")
	}
	if rep.PlanReqs == 0 {
		return fmt.Errorf("selftest: no plan queries issued")
	}
	// Books must balance: accepted ticks == store totals.
	var inStore int64
	for i := 0; i < cfg.boxes; i++ {
		total, err := svc.Store().Total(fleet{seed: cfg.seed}.boxID(i))
		if err != nil {
			return fmt.Errorf("selftest: box %d missing from store: %w", i, err)
		}
		inStore += int64(total)
	}
	// Delivery is at-least-once: a request that lands server-side but
	// whose response is lost to the run deadline is in the store yet
	// uncredited, so the store may exceed the accepted count by at most
	// one batch per retry.
	slack := rep.IngestRetries * int64(cfg.batch*cfg.ticks)
	if inStore < rep.TicksAccepted || inStore > rep.TicksAccepted+slack {
		return fmt.Errorf("selftest: store holds %d ticks, API accepted %d (+%d retry slack)",
			inStore, rep.TicksAccepted, slack)
	}
	// One synchronous pass plans every box with enough history.
	svc.Engine().Sync(context.Background())
	need := svc.Engine().Need(0)
	var planned []string
	for i := 0; i < cfg.boxes; i++ {
		id := fleet{seed: cfg.seed}.boxID(i)
		total, _ := svc.Store().Total(id)
		if total < need {
			continue
		}
		if _, ok := svc.Engine().Plan(id); !ok {
			return fmt.Errorf("selftest: box %s has %d >= %d samples but no plan", id, total, need)
		}
		planned = append(planned, id)
	}
	if len(planned) == 0 {
		return fmt.Errorf("selftest: no box reached the first plan (%d samples needed)", need)
	}
	// The decision-quality plane must be live on the same surface:
	// forecast scores on /metrics, a decision event per planned box,
	// and the readiness lifecycle through start → drain.
	if err := selftestObs(svc, srv, planned); err != nil {
		return err
	}
	fmt.Printf("selftest ok: %d ticks across %d boxes, %d planned, obs plane live\n",
		inStore, cfg.boxes, len(planned))
	return nil
}

func main() {
	var cfg loadConfig
	flag.StringVar(&cfg.daemon, "daemon", "", "base URL of a running atmd -serve (e.g. http://localhost:8023)")
	flag.IntVar(&cfg.boxes, "boxes", 100, "fleet size in boxes")
	flag.IntVar(&cfg.vms, "vms", 13, "VMs per box")
	flag.IntVar(&cfg.spd, "spd", 96, "samples per day in the synthetic diurnal signal")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "load duration")
	flag.Float64Var(&cfg.rate, "rate", 0, "target samples/s across all ingest workers (0 = unlimited)")
	flag.Float64Var(&cfg.burst, "burst", 0, "token-bucket burst per worker (0 = one batch)")
	flag.IntVar(&cfg.workers, "workers", 4, "ingest worker goroutines")
	flag.IntVar(&cfg.batch, "batch", 16, "boxes per /v1/ingest body")
	flag.IntVar(&cfg.ticks, "ticks", 4, "sampling intervals per box per request")
	flag.Float64Var(&cfg.planRate, "plan-rate", 50, "plan queries/s across all plan workers")
	flag.IntVar(&cfg.planWorkers, "plan-workers", 2, "plan-query goroutines")
	flag.Int64Var(&cfg.seed, "seed", 1, "workload seed")
	flag.BoolVar(&cfg.jsonOut, "json", false, "emit the report as JSON")
	flag.BoolVar(&cfg.selftest, "selftest", false, "boot an in-process service and validate a short run")
	flag.Parse()

	if cfg.workers < 1 || cfg.boxes < 1 || cfg.vms < 1 || cfg.batch < 1 || cfg.ticks < 1 {
		fmt.Fprintln(os.Stderr, "atmload: -workers, -boxes, -vms, -batch and -ticks must be positive")
		os.Exit(2)
	}
	if cfg.burst == 0 {
		cfg.burst = float64(cfg.batch * cfg.ticks * cfg.vms)
	}
	if cfg.selftest {
		cfg.boxes = 24
		cfg.vms = 3
		cfg.batch = 8
		cfg.ticks = 4
		cfg.duration = 2 * time.Second
		cfg.rate = 0
		cfg.planRate = 200
		if err := selftest(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "atmload: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if cfg.daemon == "" {
		fmt.Fprintln(os.Stderr, "atmload: -daemon URL required (or -selftest)")
		os.Exit(2)
	}
	client := &http.Client{Timeout: 30 * time.Second}
	rep := runLoad(context.Background(), cfg, cfg.daemon, client)
	if cfg.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	} else {
		rep.print(os.Stdout)
	}
	if rep.IngestErrors > 0 {
		os.Exit(1)
	}
}
