package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"time"

	"atm/internal/serve"
)

// selftestObs validates the decision-quality observability plane over
// the production HTTP surface after the load run: the readiness
// lifecycle (not-ready → ready → draining), live forecast-score
// metrics on /metrics, and a decision event for every planned box on
// /v1/events.
func selftestObs(svc *serve.Service, srv *httptest.Server, planned []string) error {
	client := srv.Client()

	// The engine loops have not started: /readyz refuses traffic.
	if code, _ := getURL(client, srv.URL+"/readyz"); code != http.StatusServiceUnavailable {
		return fmt.Errorf("selftest: readyz before Start = %d, want 503", code)
	}

	// Nudge every planned box exactly one horizon forward and run one
	// deterministic pass: the catch-up Sync behind us published one
	// event per rolling step — far more than the bounded ring holds —
	// so the freshest pass is the one the ring is guaranteed to retain.
	horizon := svc.Engine().Need(1) - svc.Engine().Need(0)
	var nudge serve.BatchRequest
	for _, id := range planned {
		entry := serve.BatchEntry{ID: id, Samples: make([]serve.Tick, horizon)}
		meta, err := svc.Store().Meta(id)
		if err != nil {
			return fmt.Errorf("selftest: meta for %s: %w", id, err)
		}
		for k := range entry.Samples {
			tk := serve.Tick{CPU: make([]float64, len(meta.VMs)), RAM: make([]float64, len(meta.VMs))}
			for v := range tk.CPU {
				tk.CPU[v], tk.RAM[v] = 40, 35
			}
			entry.Samples[k] = tk
		}
		nudge.Boxes = append(nudge.Boxes, entry)
	}
	body, err := json.Marshal(nudge)
	if err != nil {
		return err
	}
	resp, err := client.Post(srv.URL+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("selftest: nudge ingest: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("selftest: nudge ingest = %d", resp.StatusCode)
	}
	svc.Engine().Sync(context.Background())

	// Every planned box published a typed "plan" decision event with a
	// reason and a trace id linking it to the step's span tree.
	for _, id := range planned {
		code, body := getURL(client, srv.URL+"/v1/events?box="+id)
		if code != http.StatusOK {
			return fmt.Errorf("selftest: events for %s = %d: %s", id, code, body)
		}
		var events serve.EventsResponse
		if err := json.Unmarshal([]byte(body), &events); err != nil {
			return fmt.Errorf("selftest: decode events for %s: %w", id, err)
		}
		decided := false
		for _, ev := range events.Events {
			if ev.Box != id {
				return fmt.Errorf("selftest: events box filter leaked %q into %s's tail", ev.Box, id)
			}
			if ev.Type != "plan" {
				continue
			}
			if ev.Reason == "" || ev.TraceID == "" {
				return fmt.Errorf("selftest: plan event for %s missing reason/trace: %+v", id, ev)
			}
			decided = true
		}
		if !decided {
			return fmt.Errorf("selftest: planned box %s has no decision event (%d total)",
				id, events.Total)
		}
	}

	svc.Start()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ok, _ := svc.Ready(); ok {
			break
		}
		if time.Now().After(deadline) {
			_, reason := svc.Ready()
			return fmt.Errorf("selftest: service never became ready: %s", reason)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, body := getURL(client, srv.URL+"/readyz"); code != http.StatusOK {
		return fmt.Errorf("selftest: readyz after Start = %d: %s", code, body)
	}

	// Forecast scoring is live: the realized-MAPE histogram has
	// observations from the planned steps.
	code, metrics := getURL(client, srv.URL+"/metrics")
	if code != http.StatusOK {
		return fmt.Errorf("selftest: metrics scrape = %d", code)
	}
	if n := sampleSum(metrics, "atm_forecast_mape_count"); n <= 0 {
		return fmt.Errorf("selftest: atm_forecast_mape_count = %v, want > 0 (forecast scoring dead)", n)
	}

	// Draining flips readiness before the engine stops.
	svc.BeginDrain()
	if code, body := getURL(client, srv.URL+"/readyz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "draining") {
		return fmt.Errorf("selftest: readyz while draining = %d: %s", code, body)
	}
	svc.Drain()
	return nil
}

// getURL GETs the URL and returns the status code with the full body.
func getURL(client *http.Client, url string) (int, string) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, err.Error()
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// sampleSum adds up the values of every exposition sample of the named
// metric (labelled or not); -1 when the metric is absent.
func sampleSum(metrics, name string) float64 {
	total, seen := 0.0, false
	for _, line := range strings.Split(metrics, "\n") {
		if !strings.HasPrefix(line, name+" ") && !strings.HasPrefix(line, name+"{") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			continue
		}
		total += v
		seen = true
	}
	if !seen {
		return -1
	}
	return total
}
