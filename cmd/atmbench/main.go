// Command atmbench regenerates the paper's evaluation figures on the
// synthetic substrate and prints paper-vs-measured tables.
//
// Usage:
//
//	atmbench [-fig all|1,2,3,5,6,7,8,9,10,12,13,methods,stability,epsilon] [-boxes N] [-seed S] [-days D] [-svg DIR]
//	atmbench -sigbench FILE [-boxes N] [-seed S] [-workers W]
//	atmbench -resizebench FILE [-boxes N] [-seed S]
//	atmbench -rollingbench FILE [-reps N]
//	atmbench -benchguard FILE [-reps N] [-tolerance F]
//	atmbench -ingestbench FILE [-reps N]
//	atmbench -ingestguard FILE [-reps N] [-tolerance F]
//	atmbench -obsbench FILE [-reps N]
//	atmbench -obsguard FILE [-reps N]
//	atmbench -trace FILE [-boxes N] [-seed S] [-workers W]
//
// With -svg, figures that have a graphical form (1, 3, 8, 9, 10, 12,
// 13) are additionally written as standalone SVG files into DIR.
//
// With -sigbench, the figure drivers are skipped: atmbench times the
// signature-search kernels (sequential vs pooled DTW matrix, the
// LB_Keogh-pruned variant, naive vs incremental silhouette cut),
// prints the before/after table and writes the JSON record to FILE.
// -resizebench does the same for the spatial-modeling/resizing
// kernels: Gram-cached VIF and stepwise elimination vs the p-fit
// naive, and the hull-and-heap MCKP greedy vs the rescanning naive,
// with result-equality checks. -cpuprofile wraps any mode in a
// runtime/pprof CPU profile.
//
// With -benchguard, atmbench re-runs the rolling benchmark and fails
// (exit 1) if the measured speedup regresses below the checked-in
// floor in FILE by more than -tolerance, if result fidelity breaks
// (ticket mismatch vs the reference reuse run, MAPE drift past 1e-9,
// search budget blown), or if the deterministic ticket counts diverge
// from the record — the CI regression gate for the incremental
// window-roll kernels.
//
// With -obsbench, atmbench measures the observability plane's
// self-overhead: the streaming hot loop runs bare (nil tracer, nil
// event log) and fully instrumented (ingest spans adopted across the
// store, linked engine.step spans, a decision event per step), in
// interleaved pairs, and reports the median instrumented/bare ratio.
// -obsguard re-measures and fails (exit 1) if the overhead exceeds
// experiments.ObsOverheadBudget, if instrumentation changed any plan,
// or if the plane recorded nothing — the CI self-overhead gate.
//
// With -trace, atmbench runs one fully traced box through the complete
// pipeline (signature search → temporal fit → reconstruct → resize →
// actuate), writes every span as JSON lines to FILE and prints the
// per-stage latency table.
//
// Figure 4 is the signature-search flow (implemented as
// spatial.Search) and Figure 11 is the testbed topology (implemented
// as testbed.DefaultTopology); neither has numbers to regenerate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"time"

	"atm/internal/experiments"
)

// exitOn aborts on a figure error.
func exitOn(name string, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "figure %s: %v\n", name, err)
		os.Exit(1)
	}
}

// printTable renders one figure's table to stdout.
func printTable(name string, t *experiments.Table) {
	if _, err := t.WriteTo(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "figure %s: render: %v\n", name, err)
		os.Exit(1)
	}
}

func main() {
	figs := flag.String("fig", "all", "comma-separated figure numbers, or 'all'")
	boxes := flag.Int("boxes", 200, "number of synthetic boxes (paper: 6000)")
	seed := flag.Int64("seed", 1, "trace generator seed")
	days := flag.Int("days", 7, "trace length in days")
	svgDir := flag.String("svg", "", "directory to write figure SVGs into (optional)")
	workers := flag.Int("workers", 0, "worker-pool size; <= 0 uses one worker per core")
	sigbench := flag.String("sigbench", "", "run the signature-search benchmark and write its JSON record to this file (skips figures)")
	resizebench := flag.String("resizebench", "", "run the VIF + MCKP-greedy benchmark and write its JSON record to this file (skips figures)")
	rollingbench := flag.String("rollingbench", "", "run the rolling model-reuse benchmark and write its JSON record to this file (skips figures)")
	benchguard := flag.String("benchguard", "", "re-run the rolling benchmark and fail if it regresses below the recorded floor in this file (skips figures)")
	robustbench := flag.String("robustbench", "", "run the trust-controller robustness sweep and write its JSON record to this file (skips figures)")
	robustguard := flag.String("robustguard", "", "re-run the robustness sweep against the record in this file and fail if parity breaks or adaptive trust regresses (skips figures)")
	ingestbench := flag.String("ingestbench", "", "run the fleet-scale ingest benchmark and write its JSON record to this file (skips figures)")
	ingestguard := flag.String("ingestguard", "", "re-run the ingest benchmark and fail if it regresses below the recorded floor in this file (skips figures)")
	obsbench := flag.String("obsbench", "", "run the observability self-overhead benchmark and write its JSON record to this file (skips figures)")
	obsguard := flag.String("obsguard", "", "re-run the observability benchmark against the record in this file and fail if overhead exceeds the budget or fidelity breaks (skips figures)")
	reps := flag.Int("reps", 0, "timing repetitions for the rolling benchmark; each wall-clock number is the min over reps runs (<= 0 selects 5)")
	tolerance := flag.Float64("tolerance", 0.30, "allowed fractional speedup regression below the benchguard floor before failing")
	tracefile := flag.String("trace", "", "run one traced box-resize and write its JSONL span dump to this file (skips figures)")
	cpuprofile := flag.String("cpuprofile", "", "write a runtime/pprof CPU profile to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	writeSVG := func(name string, render func() (string, error)) {
		if *svgDir == "" {
			return
		}
		svg, err := render()
		if err != nil {
			fmt.Fprintf(os.Stderr, "svg %s: %v\n", name, err)
			os.Exit(1)
		}
		path := filepath.Join(*svgDir, name+".svg")
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "svg dir: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "svg %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("  [wrote %s]\n", path)
	}

	opts := experiments.Options{Boxes: *boxes, Seed: *seed, Days: *days, Workers: *workers, Reps: *reps}

	if *sigbench != "" {
		r, err := experiments.SignatureBench(opts)
		exitOn("sigbench", err)
		printTable("sigbench", r.Render())
		data, err := json.MarshalIndent(r, "", "  ")
		exitOn("sigbench", err)
		if err := os.WriteFile(*sigbench, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sigbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  [wrote %s]\n", *sigbench)
		return
	}

	if *resizebench != "" {
		r, err := experiments.ResizeBench(opts)
		exitOn("resizebench", err)
		printTable("resizebench", r.Render())
		data, err := json.MarshalIndent(r, "", "  ")
		exitOn("resizebench", err)
		if err := os.WriteFile(*resizebench, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "resizebench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  [wrote %s]\n", *resizebench)
		return
	}

	if *rollingbench != "" {
		r, err := experiments.RollingBench(opts)
		exitOn("rollingbench", err)
		printTable("rollingbench", r.Render())
		data, err := json.MarshalIndent(r, "", "  ")
		exitOn("rollingbench", err)
		if err := os.WriteFile(*rollingbench, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "rollingbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  [wrote %s]\n", *rollingbench)
		return
	}

	if *robustbench != "" {
		r, err := experiments.RobustBench(opts)
		exitOn("robustbench", err)
		printTable("robustbench", r.Render())
		data, err := json.MarshalIndent(r, "", "  ")
		exitOn("robustbench", err)
		if err := os.WriteFile(*robustbench, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "robustbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  [wrote %s]\n", *robustbench)
		writeSVG("fig_robust_frontier", r.RenderSVG)
		return
	}

	if *robustguard != "" {
		data, err := os.ReadFile(*robustguard)
		exitOn("robustguard", err)
		var floor experiments.RobustBenchResult
		exitOn("robustguard", json.Unmarshal(data, &floor))
		r, err := experiments.RobustBench(opts)
		exitOn("robustguard", err)
		printTable("robustguard", r.Render())
		var fails []string
		if !r.StationaryParity {
			fails = append(fails, "λ=1 no longer bit-identical to the controller-free pipeline on the stationary trace")
		}
		for _, fam := range r.Families {
			adaptive := fam.Cells[len(fam.Cells)-1]
			if !fam.AdaptiveOK {
				fails = append(fails, fmt.Sprintf("%s: adaptive tickets %d exceed best endpoint %d + tolerance %d",
					fam.Family, adaptive.TicketsAfter, fam.EndpointTickets, fam.Tolerance))
			}
			// Drift vs the recorded frontier: the workload is fully
			// deterministic, so adaptive results creeping past the
			// recorded count + tolerance mean the controller got worse.
			for _, rec := range floor.Families {
				if rec.Family != fam.Family || len(rec.Cells) == 0 {
					continue
				}
				recorded := rec.Cells[len(rec.Cells)-1]
				if adaptive.TicketsAfter > recorded.TicketsAfter+fam.Tolerance {
					fails = append(fails, fmt.Sprintf("%s: adaptive tickets %d regressed past recorded %d + tolerance %d",
						fam.Family, adaptive.TicketsAfter, recorded.TicketsAfter, fam.Tolerance))
				}
			}
		}
		if len(fails) > 0 {
			for _, f := range fails {
				fmt.Fprintf(os.Stderr, "robustguard: %s\n", f)
			}
			os.Exit(1)
		}
		fmt.Printf("  [robustguard ok: parity %v, %d families within tolerance]\n",
			r.StationaryParity, len(r.Families))
		return
	}

	if *ingestbench != "" {
		r, err := experiments.IngestBench(opts)
		exitOn("ingestbench", err)
		printTable("ingestbench", r.Render())
		data, err := json.MarshalIndent(r, "", "  ")
		exitOn("ingestbench", err)
		if err := os.WriteFile(*ingestbench, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "ingestbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  [wrote %s]\n", *ingestbench)
		return
	}

	if *ingestguard != "" {
		data, err := os.ReadFile(*ingestguard)
		exitOn("ingestguard", err)
		var floor experiments.IngestBenchResult
		exitOn("ingestguard", json.Unmarshal(data, &floor))
		r, err := experiments.IngestBench(opts)
		exitOn("ingestguard", err)
		printTable("ingestguard", r.Render())
		var fails []string
		if want := floor.Speedup * (1 - *tolerance); r.Speedup < want {
			fails = append(fails, fmt.Sprintf("speedup %.2fx below floor %.2fx (recorded %.2fx, tolerance %.0f%%)",
				r.Speedup, want, floor.Speedup, *tolerance*100))
		}
		if !r.StepsMatch || !r.PlansMatch {
			fails = append(fails, "sharded plane diverged from the single-shard plane (steps or plans)")
		}
		if r.Headroom < 1 {
			fails = append(fails, fmt.Sprintf("sharded plane below the paper fleet's %.0f samples/s (headroom %.2fx)",
				r.PaperSamplesPerSec, r.Headroom))
		}
		// The O(k) contract: dirty-set passes must keep inspecting
		// ~chunk-sized sets, not the fleet.
		if r.ShardedInspected > float64(2*r.ChunkBoxes) {
			fails = append(fails, fmt.Sprintf("dirty passes inspect %.0f boxes/pass, want ~%d (O(k) contract broken)",
				r.ShardedInspected, r.ChunkBoxes))
		}
		if len(fails) > 0 {
			for _, f := range fails {
				fmt.Fprintf(os.Stderr, "ingestguard: %s\n", f)
			}
			os.Exit(1)
		}
		fmt.Printf("  [ingestguard ok: %.2fx vs floor %.2fx, headroom %.0fx]\n", r.Speedup, floor.Speedup, r.Headroom)
		return
	}

	if *obsbench != "" {
		r, err := experiments.ObsBench(opts)
		exitOn("obsbench", err)
		printTable("obsbench", r.Render())
		data, err := json.MarshalIndent(r, "", "  ")
		exitOn("obsbench", err)
		if err := os.WriteFile(*obsbench, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "obsbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  [wrote %s]\n", *obsbench)
		return
	}

	if *obsguard != "" {
		// The recorded file documents the last accepted measurement; the
		// gate itself is absolute (ObsOverheadBudget), not relative to the
		// floor — observability overhead must never creep past the budget
		// regardless of what the record says.
		data, err := os.ReadFile(*obsguard)
		exitOn("obsguard", err)
		var floor experiments.ObsBenchResult
		exitOn("obsguard", json.Unmarshal(data, &floor))
		r, err := experiments.ObsBench(opts)
		exitOn("obsguard", err)
		printTable("obsguard", r.Render())
		var fails []string
		if r.OverheadFrac > experiments.ObsOverheadBudget {
			fails = append(fails, fmt.Sprintf("observability overhead %+.1f%% exceeds the %.0f%% budget (recorded %+.1f%%)",
				100*r.OverheadFrac, 100*experiments.ObsOverheadBudget, 100*floor.OverheadFrac))
		}
		if !r.PlansMatch {
			fails = append(fails, "instrumentation changed a published plan (fidelity broken)")
		}
		if r.SpansExported == 0 || r.EventsPublished == 0 {
			fails = append(fails, fmt.Sprintf("instrumented run recorded nothing (%d spans, %d events) — the plane is dead, not cheap",
				r.SpansExported, r.EventsPublished))
		}
		if len(fails) > 0 {
			for _, f := range fails {
				fmt.Fprintf(os.Stderr, "obsguard: %s\n", f)
			}
			os.Exit(1)
		}
		fmt.Printf("  [obsguard ok: %+.1f%% overhead within %.0f%% budget, %d spans, %d events]\n",
			100*r.OverheadFrac, 100*experiments.ObsOverheadBudget, r.SpansExported, r.EventsPublished)
		return
	}

	if *benchguard != "" {
		data, err := os.ReadFile(*benchguard)
		exitOn("benchguard", err)
		var floor experiments.RollingBenchResult
		exitOn("benchguard", json.Unmarshal(data, &floor))
		r, err := experiments.RollingBench(opts)
		exitOn("benchguard", err)
		printTable("benchguard", r.Render())
		var fails []string
		if want := floor.Speedup * (1 - *tolerance); r.Speedup < want {
			fails = append(fails, fmt.Sprintf("speedup %.2fx below floor %.2fx (recorded %.2fx, tolerance %.0f%%)",
				r.Speedup, want, floor.Speedup, *tolerance*100))
		}
		if !r.WithinBudget {
			fails = append(fails, fmt.Sprintf("reuse searched %d windows, budget %d", r.ReuseSearches, r.ReuseBudget))
		}
		if !r.TicketsMatch {
			fails = append(fails, "incremental reuse tickets diverged from the reference reuse run")
		}
		if r.ReuseMAPEDelta > 1e-9 {
			fails = append(fails, fmt.Sprintf("reuse MAPE delta %g past 1e-9", r.ReuseMAPEDelta))
		}
		// The workload is seeded, so result numbers (not wall times)
		// must reproduce the record exactly.
		if r.Steps != floor.Steps || r.BaselineTickets != floor.BaselineTickets || r.ReuseTickets != floor.ReuseTickets {
			fails = append(fails, fmt.Sprintf("results moved off the record: steps %d/%d, baseline tickets %d/%d, reuse tickets %d/%d",
				r.Steps, floor.Steps, r.BaselineTickets, floor.BaselineTickets, r.ReuseTickets, floor.ReuseTickets))
		}
		if len(fails) > 0 {
			for _, f := range fails {
				fmt.Fprintf(os.Stderr, "benchguard: %s\n", f)
			}
			os.Exit(1)
		}
		fmt.Printf("  [benchguard ok: %.2fx vs floor %.2fx]\n", r.Speedup, floor.Speedup)
		return
	}

	if *tracefile != "" {
		f, err := os.Create(*tracefile)
		exitOn("trace", err)
		r, err := experiments.TraceRun(opts, f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		exitOn("trace", err)
		printTable("trace", r.Render())
		fmt.Printf("  [wrote %s: %d spans]\n", *tracefile, r.Spans)
		return
	}

	want := map[string]bool{}
	if *figs == "all" {
		for _, f := range []string{"1", "2", "3", "5", "6", "7", "8", "9", "10", "12", "13", "methods", "stability", "epsilon"} {
			want[f] = true
		}
	} else {
		for _, f := range strings.Split(*figs, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}

	run := func(name string, f func() (interface{ Render() *experiments.Table }, error)) {
		if !want[name] {
			return
		}
		start := time.Now()
		r, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", name, err)
			os.Exit(1)
		}
		if _, err := r.Render().WriteTo(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: render: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("  [figure %s took %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if want["1"] {
		r, err := experiments.Fig1(opts)
		exitOn("1", err)
		printTable("1", r.Render())
		writeSVG("fig1", r.RenderSVG)
	}
	run("2", func() (interface{ Render() *experiments.Table }, error) { return experiments.Fig2(opts) })
	if want["3"] {
		r, err := experiments.Fig3(opts)
		exitOn("3", err)
		printTable("3", r.Render())
		writeSVG("fig3", r.RenderSVG)
	}
	run("5", func() (interface{ Render() *experiments.Table }, error) { return experiments.Fig5(opts) })
	run("6", func() (interface{ Render() *experiments.Table }, error) { return experiments.Fig6(opts) })
	run("7", func() (interface{ Render() *experiments.Table }, error) { return experiments.Fig7(opts) })
	if want["8"] {
		r, err := experiments.Fig8(opts)
		exitOn("8", err)
		printTable("8", r.Render())
		writeSVG("fig8", r.RenderSVG)
	}

	// Figures 9 and 10 share the expensive full-ATM runs.
	var fig9 *experiments.Fig9Result
	if want["9"] || want["10"] {
		start := time.Now()
		var err error
		fig9, err = experiments.Fig9(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure 9: %v\n", err)
			os.Exit(1)
		}
		if want["9"] {
			if _, err := fig9.Render().WriteTo(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "figure 9: render: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("  [figure 9 took %v]\n\n", time.Since(start).Round(time.Millisecond))
			writeSVG("fig9", fig9.RenderSVG)
		}
	}
	if want["10"] {
		r, err := experiments.Fig10(opts, fig9)
		exitOn("10", err)
		printTable("10", r.Render())
		writeSVG("fig10", r.RenderSVG)
	}

	var fig12 *experiments.Fig12Result
	if want["12"] || want["13"] {
		start := time.Now()
		var err error
		fig12, err = experiments.Fig12(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure 12: %v\n", err)
			os.Exit(1)
		}
		if want["12"] {
			if _, err := fig12.Render().WriteTo(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "figure 12: render: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("  [figure 12 took %v]\n\n", time.Since(start).Round(time.Millisecond))
			writeSVG("fig12", fig12.RenderSVG)
		}
	}
	if want["13"] {
		r, err := experiments.Fig13(opts, fig12)
		exitOn("13", err)
		printTable("13", r.Render())
		writeSVG("fig13", r.RenderSVG)
	}
	if want["methods"] {
		r, err := experiments.Methods(opts)
		exitOn("methods", err)
		printTable("methods", r.Render())
	}
	if want["stability"] {
		r, err := experiments.Stability(opts)
		exitOn("stability", err)
		printTable("stability", r.Render())
	}
	if want["epsilon"] {
		r, err := experiments.Epsilon(opts, nil)
		exitOn("epsilon", err)
		printTable("epsilon", r.Render())
	}
}
