// Command tracegen generates a synthetic data-center usage trace —
// the stand-in for the paper's proprietary IBM trace — and writes it
// as CSV to stdout or a file.
//
// Usage:
//
//	tracegen [-boxes N] [-days D] [-windows W] [-seed S] [-gaps F] [-o out.csv]
//
// Generating the paper's full scale (6000 boxes, 7 days) produces a
// multi-gigabyte file; the default is a laptop-friendly 100 boxes.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"atm/internal/trace"
)

func main() {
	boxes := flag.Int("boxes", 100, "number of physical boxes (paper: 6000)")
	days := flag.Int("days", 7, "trace length in days")
	windows := flag.Int("windows", 96, "samples per day (96 = 15-minute windows)")
	seed := flag.Int64("seed", 1, "generator seed")
	gaps := flag.Float64("gaps", 0.2, "fraction of boxes with monitoring gaps")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	tr := trace.Generate(trace.GenConfig{
		Boxes:         *boxes,
		Days:          *days,
		SamplesPerDay: *windows,
		Seed:          *seed,
		GapFraction:   *gaps,
	})

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "tracegen: close: %v\n", err)
				os.Exit(1)
			}
		}()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if err := tr.WriteCSV(bw); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	if err := bw.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: flush: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d boxes, %d VMs, %d samples/series\n",
		len(tr.Boxes), tr.NumVMs(), tr.Samples())
}
