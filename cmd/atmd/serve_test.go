package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"atm/internal/actuator"
	"atm/internal/core"
	"atm/internal/engine"
	"atm/internal/predict"
	"atm/internal/serve"
	"atm/internal/spatial"
	"atm/internal/state"
	"atm/internal/trace"
)

// testService builds a service with a cheap temporal model and an
// engine that is driven manually (no background loop), so the test is
// deterministic.
func testService(t *testing.T, setter core.LimitSetter) (*serve.Service, int) {
	t.Helper()
	spd := 32
	cfg := engine.Config{
		Core: core.Config{
			Spatial:      spatial.Config{Method: spatial.MethodCBC},
			Temporal:     func() predict.Model { return &predict.SeasonalNaive{Period: spd} },
			TrainWindows: 2 * spd,
			Horizon:      spd,
			Threshold:    0.6,
			Epsilon:      0.1,
			Degraded:     true,
		},
		SamplesPerDay: spd,
		Setter:        setter,
	}
	svc, err := serve.New(serve.Config{
		History: 2 * (cfg.Core.TrainWindows + cfg.Core.Horizon),
		Shards:  4,
		Engine:  cfg,
	})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	return svc, spd
}

func postSamples(t *testing.T, client *http.Client, url string, req serve.SamplesRequest) (int, map[string]any) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

// TestServeIngestAndPlan drives the streaming API end to end through
// the production mux: register + ingest a generated trace, run the
// engine synchronously, and read the resulting plan.
func TestServeIngestAndPlan(t *testing.T) {
	svc, _ := testService(t, nil)
	srv := httptest.NewServer(newHandler(actuator.NewRegistry(), svc, false, time.Now()))
	defer srv.Close()
	client := srv.Client()

	tr := trace.Generate(trace.GenConfig{
		Boxes: 1, Days: 4, SamplesPerDay: 32, Seed: 11, GapFraction: 1e-9,
	})
	b := &tr.Boxes[0]
	meta := state.MetaOf(b)
	url := srv.URL + "/v1/boxes/" + b.ID + "/samples"
	planURL := srv.URL + "/v1/boxes/" + b.ID + "/plan"

	// Plan before any ingest: 404 for the unknown box.
	resp, err := client.Get(planURL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("plan for unknown box: status %d, want 404", resp.StatusCode)
	}

	// Ingest without registration: 404 with a hint.
	code, out := postSamples(t, client, url, serve.SamplesRequest{
		Samples: []serve.Tick{{CPU: make([]float64, len(b.VMs)), RAM: make([]float64, len(b.VMs))}},
	})
	if code != http.StatusNotFound {
		t.Fatalf("unregistered ingest: status %d (%v), want 404", code, out)
	}

	// Register + ingest the whole trace in batches of 16 ticks.
	total := len(b.VMs[0].CPU)
	for from := 0; from < total; from += 16 {
		to := from + 16
		if to > total {
			to = total
		}
		req := serve.SamplesRequest{}
		if from == 0 {
			req.Box = &meta
		}
		for k := from; k < to; k++ {
			tk := serve.Tick{CPU: make([]float64, len(b.VMs)), RAM: make([]float64, len(b.VMs))}
			for v := range b.VMs {
				tk.CPU[v] = b.VMs[v].CPU[k]
				tk.RAM[v] = b.VMs[v].RAM[k]
			}
			req.Samples = append(req.Samples, tk)
		}
		code, out := postSamples(t, client, url, req)
		if code != http.StatusOK {
			t.Fatalf("ingest [%d,%d): status %d (%v)", from, to, code, out)
		}
		if from == 0 && out["total"].(float64) != float64(to) {
			t.Fatalf("ingest total = %v, want %d", out["total"], to)
		}
		if out["accepted"].(float64) != float64(to-from) {
			t.Fatalf("ingest accepted = %v, want %d", out["accepted"], to-from)
		}
	}

	// Re-announce with a different shape: 409.
	badMeta := meta
	badMeta.VMs = meta.VMs[:1]
	if code, _ := postSamples(t, client, url, serve.SamplesRequest{Box: &badMeta}); code != http.StatusConflict {
		t.Fatalf("shape-changing re-register: status %d, want 409", code)
	}

	// No engine pass has run yet: plan is still 404 (registered box).
	resp, err = client.Get(planURL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("plan before engine pass: status %d, want 404", resp.StatusCode)
	}

	svc.Engine().Sync(context.Background())

	resp, err = client.Get(planURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan: status %d", resp.StatusCode)
	}
	var plan engine.Plan
	if err := json.NewDecoder(resp.Body).Decode(&plan); err != nil {
		t.Fatalf("decode plan: %v", err)
	}
	if plan.Box != b.ID || len(plan.CPUSizes) != len(b.VMs) || len(plan.RAMSizes) != len(b.VMs) {
		t.Fatalf("plan shape: %+v", plan)
	}
	wantSteps := (total - svc.Engine().Need(0) + 32) / 32 // (total-T-H)/H + 1
	if plan.Step != wantSteps-1 {
		t.Errorf("plan step = %d, want %d", plan.Step, wantSteps-1)
	}

	// Engine gauges are on the shared /metrics surface.
	mresp, err := client.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 1<<16)
	for {
		n, rerr := mresp.Body.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	for _, want := range []string{
		"atm_engine_steps_total", "atm_engine_research_total",
		"atm_engine_ingest_lag_samples", "atm_state_samples_total",
		"atm_state_dirty_boxes", "atm_engine_pass_seconds",
		"atm_plan_serve_seconds",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestServeActuation checks -actuate wiring: plans land in the
// daemon's own cgroup registry.
func TestServeActuation(t *testing.T) {
	reg := actuator.NewRegistry()
	svc, _ := testService(t, reg)
	srv := httptest.NewServer(newHandler(reg, svc, false, time.Now()))
	defer srv.Close()

	tr := trace.Generate(trace.GenConfig{
		Boxes: 1, Days: 3, SamplesPerDay: 32, Seed: 19, GapFraction: 1e-9,
	})
	b := &tr.Boxes[0]
	meta := state.MetaOf(b)
	url := srv.URL + "/v1/boxes/" + b.ID + "/samples"

	req := serve.SamplesRequest{Box: &meta}
	for k := 0; k < len(b.VMs[0].CPU); k++ {
		tk := serve.Tick{CPU: make([]float64, len(b.VMs)), RAM: make([]float64, len(b.VMs))}
		for v := range b.VMs {
			tk.CPU[v] = b.VMs[v].CPU[k]
			tk.RAM[v] = b.VMs[v].RAM[k]
		}
		req.Samples = append(req.Samples, tk)
	}
	if code, out := postSamples(t, srv.Client(), url, req); code != http.StatusOK {
		t.Fatalf("ingest: status %d (%v)", code, out)
	}
	svc.Engine().Sync(context.Background())

	if _, ok := svc.Engine().Plan(b.ID); !ok {
		t.Fatal("no plan after sync")
	}
	ids := reg.List()
	if len(ids) != len(b.VMs) {
		t.Fatalf("registry has %d cgroups, want %d (one per VM)", len(ids), len(b.VMs))
	}
}

// TestServeBadRequests covers route and body validation through the
// production mux, including the batched /v1/ingest mount.
func TestServeBadRequests(t *testing.T) {
	svc, _ := testService(t, nil)
	srv := httptest.NewServer(newHandler(actuator.NewRegistry(), svc, false, time.Now()))
	defer srv.Close()
	client := srv.Client()

	for _, tc := range []struct {
		name, method, path, body string
		want                     int
	}{
		{"bad route", http.MethodGet, "/v1/boxes/", "", http.StatusNotFound},
		{"unknown verb", http.MethodGet, "/v1/boxes/b/limits", "", http.StatusNotFound},
		{"plan post", http.MethodPost, "/v1/boxes/b/plan", "{}", http.StatusMethodNotAllowed},
		{"samples get", http.MethodGet, "/v1/boxes/b/samples", "", http.StatusMethodNotAllowed},
		{"bad json", http.MethodPost, "/v1/boxes/b/samples", "{", http.StatusBadRequest},
		{"unknown field", http.MethodPost, "/v1/boxes/b/samples", `{"nope": 1}`, http.StatusBadRequest},
		{"id mismatch", http.MethodPost, "/v1/boxes/b/samples",
			`{"box": {"id": "other", "vms": [{"id": "v"}]}}`, http.StatusBadRequest},
		{"ingest get", http.MethodGet, "/v1/ingest", "", http.StatusMethodNotAllowed},
		{"ingest bad json", http.MethodPost, "/v1/ingest", "{", http.StatusBadRequest},
		{"ingest unknown field", http.MethodPost, "/v1/ingest", `{"nope": 1}`, http.StatusBadRequest},
	} {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := client.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}
}

// TestServiceDrain checks Start/Drain round-trips and is idempotent
// about a never-started service.
func TestServiceDrain(t *testing.T) {
	svc, _ := testService(t, nil)
	svc.Drain() // never started: no-op
	svc.Start()
	done := make(chan struct{})
	go func() { svc.Drain(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not complete")
	}
}

// TestServeConfigBuild pins how the actuation flags compose into the
// engine config: -actuate and -dry-run wire the registry in as a
// Backend, -policy loads rails from disk and refuses to stand alone.
func TestServeConfigBuild(t *testing.T) {
	base := serveConfig{train: 64, horizon: 32, spd: 32, threshold: 0.6, epsilon: 0.1}
	reg := actuator.NewRegistry()

	plain, err := base.build(reg)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if plain.Engine.Backend != nil || plain.Engine.Setter != nil {
		t.Error("plain build wired an actuation target")
	}

	act := base
	act.actuate = true
	cfg, err := act.build(reg)
	if err != nil {
		t.Fatalf("build -actuate: %v", err)
	}
	if cfg.Engine.Backend == nil || cfg.Engine.DryRun {
		t.Error("-actuate should set Backend without DryRun")
	}

	dry := base
	dry.dryRun = true
	cfg, err = dry.build(reg)
	if err != nil {
		t.Fatalf("build -dry-run: %v", err)
	}
	if cfg.Engine.Backend == nil || !cfg.Engine.DryRun {
		t.Error("-dry-run should set Backend and DryRun")
	}

	pol := base
	pol.policyFile = filepath.Join(t.TempDir(), "policy.json")
	if err := os.WriteFile(pol.policyFile,
		[]byte(`{"mode":"reject","rules":[{"match":"*","max_cpu_ghz":2}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := pol.build(reg); err == nil {
		t.Error("-policy without -actuate/-dry-run accepted, want error")
	}
	pol.dryRun = true
	cfg, err = pol.build(reg)
	if err != nil {
		t.Fatalf("build -policy -dry-run: %v", err)
	}
	if cfg.Engine.Policy == nil || cfg.Engine.Policy.Mode != "reject" || len(cfg.Engine.Policy.Rules) != 1 {
		t.Errorf("policy not loaded: %+v", cfg.Engine.Policy)
	}

	bad := pol
	bad.policyFile = filepath.Join(t.TempDir(), "missing.json")
	if _, err := bad.build(reg); err == nil {
		t.Error("missing policy file accepted, want error")
	}
}
