package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"atm/internal/actuator"
)

func get(t *testing.T, client *http.Client, url string) (int, string) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(b)
}

// TestDaemonRoundTrip drives the production mux end to end: cgroup
// writes through the instrumented API must surface in /metrics as both
// actuator gauges and per-route HTTP histograms, and /healthz must
// report liveness.
func TestDaemonRoundTrip(t *testing.T) {
	srv := httptest.NewServer(newHandler(actuator.NewRegistry(), nil, false, time.Now()))
	defer srv.Close()
	client := srv.Client()

	// Create a cgroup through the instrumented API.
	req, err := http.NewRequest(http.MethodPut, srv.URL+"/cgroups/vm-7",
		strings.NewReader(`{"cpu_ghz": 2.5, "ram_gb": 4}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("PUT cgroup: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT cgroup: status %d, want 204", resp.StatusCode)
	}

	if code, body := get(t, client, srv.URL+"/cgroups/vm-7"); code != http.StatusOK || !strings.Contains(body, "2.5") {
		t.Fatalf("GET cgroup: status %d body %q", code, body)
	}

	code, body := get(t, client, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	for _, want := range []string{
		`atm_http_request_seconds_bucket{route="/cgroups/:id",le="+Inf"}`,
		`atm_http_requests_total{route="/cgroups/:id",method="PUT",status="2xx"}`,
		"atm_actuator_cgroups",
		"atm_actuator_cpu_alloc_ghz",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = get(t, client, srv.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("/healthz: status %d body %q", code, body)
	}
}

// TestPprofGate checks the profiling handlers are absent by default
// and present behind the flag.
func TestPprofGate(t *testing.T) {
	off := httptest.NewServer(newHandler(actuator.NewRegistry(), nil, false, time.Now()))
	defer off.Close()
	if code, _ := get(t, off.Client(), off.URL+"/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("pprof disabled: status %d, want 404", code)
	}

	on := httptest.NewServer(newHandler(actuator.NewRegistry(), nil, true, time.Now()))
	defer on.Close()
	if code, body := get(t, on.Client(), on.URL+"/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof enabled: status %d body %q", code, body)
	}
}

// TestDaemonRejectsBadLimits drives hostile PUT bodies through the
// production mux: anything that is not a finite positive limit pair
// must come back 400 with a JSON error object, and must not create the
// cgroup.
func TestDaemonRejectsBadLimits(t *testing.T) {
	srv := httptest.NewServer(newHandler(actuator.NewRegistry(), nil, false, time.Now()))
	defer srv.Close()
	client := srv.Client()

	cases := []struct {
		name string
		body string
	}{
		{"negative cpu", `{"cpu_ghz": -1, "ram_gb": 4}`},
		{"negative ram", `{"cpu_ghz": 1, "ram_gb": -4}`},
		{"zero cpu", `{"cpu_ghz": 0, "ram_gb": 4}`},
		{"zero ram", `{"cpu_ghz": 1, "ram_gb": 0}`},
		{"missing fields", `{}`},
		{"inf cpu", `{"cpu_ghz": 1e999, "ram_gb": 4}`},
		{"nan literal", `{"cpu_ghz": NaN, "ram_gb": 4}`},
		{"not json", `cpu=1`},
		{"wrong types", `{"cpu_ghz": "two", "ram_gb": 4}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(http.MethodPut, srv.URL+"/cgroups/vm-bad",
				strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := client.Do(req)
			if err != nil {
				t.Fatalf("PUT: %v", err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type = %q, want application/json", ct)
			}
			var msg map[string]string
			if err := json.NewDecoder(resp.Body).Decode(&msg); err != nil || msg["error"] == "" {
				t.Errorf("body not a JSON error object: %v %v", msg, err)
			}
		})
	}
	// None of the rejected bodies may have created the cgroup.
	if code, _ := get(t, client, srv.URL+"/cgroups/vm-bad"); code != http.StatusNotFound {
		t.Fatalf("rejected PUT created the cgroup: GET status %d", code)
	}
}
