// Command atmd is the per-hypervisor actuation daemon from the paper's
// Section IV-C: it exposes cgroup-style per-VM resource limits over a
// web API so an ATM controller can resize VMs on the fly without
// restarting guests, plus the observability surface operators scrape.
//
// Usage:
//
//	atmd [-addr :8023] [-pprof] [-grace 10s]
//
// API:
//
//	GET    /cgroups        list all VM limits
//	GET    /cgroups/<vm>   read one VM's limits
//	PUT    /cgroups/<vm>   set limits, body {"cpu_ghz": 7.2, "ram_gb": 4}
//	DELETE /cgroups/<vm>   remove a VM's cgroup
//	GET    /metrics        Prometheus text exposition (registry gauges,
//	                       HTTP route histograms, pipeline counters)
//	GET    /healthz        liveness JSON {"status":"ok",...}
//	GET    /debug/pprof/*  CPU/heap/goroutine profiles (only with -pprof)
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: it stops
// accepting connections and drains in-flight requests for up to the
// -grace duration before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"atm/internal/actuator"
	"atm/internal/obs"
)

// newHandler assembles the daemon's route table: the cgroup API under
// HTTP middleware (request counts, latency histograms, in-flight
// gauges per route), the metrics and health endpoints, and — when
// enabled — the pprof profiling handlers. Split from main so tests can
// drive the exact production mux through httptest.
func newHandler(reg *actuator.Registry, pprofEnabled bool, start time.Time) http.Handler {
	mux := http.NewServeMux()
	api := reg.Handler()
	metrics := obs.Default()
	// Two routes, not one per cgroup id: metric label cardinality must
	// stay bounded no matter how many VMs the hypervisor hosts.
	mux.Handle("/cgroups", metrics.InstrumentHandler("/cgroups", api))
	mux.Handle("/cgroups/", metrics.InstrumentHandler("/cgroups/:id", api))
	mux.Handle("/metrics", obs.Handler())
	mux.Handle("/healthz", obs.HealthzHandler(start))
	if pprofEnabled {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func main() {
	addr := flag.String("addr", ":8023", "listen address")
	pprofEnabled := flag.Bool("pprof", false, "expose /debug/pprof/* profiling handlers")
	grace := flag.Duration("grace", 10*time.Second, "graceful-shutdown drain deadline")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newHandler(actuator.NewRegistry(), *pprofEnabled, time.Now()),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("atmd: serving cgroup API on %s (pprof=%v)", *addr, *pprofEnabled)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		// Listener failed before any signal (e.g. port in use).
		fmt.Fprintf(os.Stderr, "atmd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	log.Printf("atmd: signal received, draining for up to %v", *grace)
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "atmd: shutdown: %v\n", err)
		os.Exit(1)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "atmd: %v\n", err)
		os.Exit(1)
	}
	log.Printf("atmd: drained, exiting")
}
