// Command atmd is the per-hypervisor ATM daemon: it exposes
// cgroup-style per-VM resource limits over a web API (the paper's
// Section IV-C actuation path) and, in -serve mode, runs the full
// streaming ATM service — a state store fed by an ingestion API and a
// scheduling engine that re-plans each box as samples stream in.
//
// Usage:
//
//	atmd [-addr :8023] [-pprof] [-grace 10s]
//	     [-serve -train 64 -horizon 32 -spd 32 [-reuse] [-actuate] ...]
//
// API:
//
//	GET    /cgroups        list all VM limits
//	GET    /cgroups/<vm>   read one VM's limits
//	PUT    /cgroups/<vm>   set limits, body {"cpu_ghz": 7.2, "ram_gb": 4}
//	DELETE /cgroups/<vm>   remove a VM's cgroup
//	GET    /metrics        Prometheus text exposition (registry gauges,
//	                       HTTP route histograms, pipeline + engine
//	                       counters)
//	GET    /healthz        liveness JSON {"status":"ok",...}
//	GET    /readyz         readiness: 200 only when every engine shard
//	                       loop is running and the daemon is not
//	                       draining (equals liveness without -serve)
//	GET    /debug/pprof/*  CPU/heap/goroutine profiles (only with -pprof)
//
// With -serve, additionally:
//
//	POST /v1/boxes/<id>/samples  ingest usage ticks, body
//	                             {"box": {...}, "samples": [{"cpu": [...], "ram": [...]}]}
//	                             ("box" meta required on first contact)
//	POST /v1/ingest              batched ingest for many boxes, body
//	                             {"boxes": [{"id": "...", "box": {...}, "samples": [...]}]}
//	                             with per-box error reporting
//	GET  /v1/boxes/<id>/plan     latest resize plan for the box
//	GET  /v1/boxes/<id>/whatif   dry-run actuation plan: per-VM writes,
//	                             policy clamps and rejections the latest
//	                             plan would produce, computed without
//	                             touching the cgroup registry
//	GET  /v1/boxes/<id>/debug    step state, last decision, forecast
//	                             scorecard, events and span tree
//	GET  /v1/events              decision-event tail (?box=, ?n=)
//
// -actuate pushes plans into this daemon's own cgroup registry through
// the transactional apply path; -policy FILE interposes min/max/step
// clamps and write rate limits in front of every write; -dry-run keeps
// the engine plan-only (whatif still answers) no matter what else is
// set.
//
// -events FILE appends every decision event as one JSON line; -spans
// FILE does the same for spans with size-based rotation
// (-spans-max-bytes).
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: it stops
// accepting connections, drains in-flight requests for up to the
// -grace duration, then stops the engine — letting in-flight pipeline
// steps finish — before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"atm/internal/actuator"
	"atm/internal/obs"
	"atm/internal/serve"
)

// newHandler assembles the daemon's route table: the cgroup API under
// HTTP middleware (request counts, latency histograms, in-flight
// gauges per route), the metrics and health endpoints, the streaming
// API when a service is attached (-serve), and — when enabled — the
// pprof profiling handlers. Split from main so tests can drive the
// exact production mux through httptest.
func newHandler(reg *actuator.Registry, svc *serve.Service, pprofEnabled bool, start time.Time) http.Handler {
	mux := http.NewServeMux()
	api := reg.Handler()
	metrics := obs.Default()
	// Two routes, not one per cgroup id: metric label cardinality must
	// stay bounded no matter how many VMs the hypervisor hosts.
	mux.Handle("/cgroups", metrics.InstrumentHandler("/cgroups", api))
	mux.Handle("/cgroups/", metrics.InstrumentHandler("/cgroups/:id", api))
	if svc != nil {
		// One route label for the whole streaming API: box ids are
		// unbounded, metric label cardinality must not be.
		mux.Handle("/v1/boxes/", metrics.InstrumentHandler("/v1/boxes/:id", svc.Handler()))
		mux.Handle("/v1/ingest", metrics.InstrumentHandler("/v1/ingest", svc.IngestHandler()))
		mux.Handle("/v1/events", metrics.InstrumentHandler("/v1/events", svc.EventsHandler()))
	}
	mux.Handle("/metrics", obs.Handler())
	// Liveness and readiness split: /healthz answers 200 while the
	// process lives; /readyz tracks whether traffic should route here
	// (engine loops running, not draining). Without -serve there is no
	// engine to wait for, so readiness equals liveness.
	mux.Handle("/healthz", obs.HealthzHandler(start))
	if svc != nil {
		mux.Handle("/readyz", svc.ReadyzHandler())
	} else {
		mux.Handle("/readyz", obs.HealthzHandler(start))
	}
	if pprofEnabled {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func main() {
	addr := flag.String("addr", ":8023", "listen address")
	pprofEnabled := flag.Bool("pprof", false, "expose /debug/pprof/* profiling handlers")
	grace := flag.Duration("grace", 10*time.Second, "graceful-shutdown drain deadline")
	serveFlag := flag.Bool("serve", false, "run the streaming ATM service (ingestion + planning engine)")
	var sc serveConfig
	flag.IntVar(&sc.train, "train", 64, "serve: training window size in samples")
	flag.IntVar(&sc.horizon, "horizon", 32, "serve: prediction/resizing horizon in samples")
	flag.IntVar(&sc.spd, "spd", 32, "serve: samples per day (seasonal period)")
	flag.Float64Var(&sc.threshold, "threshold", 0.6, "serve: ticket threshold (fraction of capacity)")
	flag.Float64Var(&sc.epsilon, "epsilon", 0.1, "serve: MCKP approximation epsilon")
	flag.BoolVar(&sc.reuse, "reuse", false, "serve: reuse signature sets across windows (refit until drift)")
	flag.BoolVar(&sc.robust, "control", false, "serve: blend plans toward the worst-case-safe allocation under drift-adaptive forecast trust")
	flag.BoolVar(&sc.actuate, "actuate", false, "serve: push plans into this daemon's cgroup registry")
	flag.BoolVar(&sc.dryRun, "dry-run", false, "serve: plan-only — publish plans and answer whatif, never write limits")
	flag.StringVar(&sc.policyFile, "policy", "", "serve: JSON policy file with min/max/step clamps and write rate limits (requires -actuate or -dry-run)")
	flag.IntVar(&sc.workers, "workers", 0, "serve: engine worker-pool size (0 = one per core)")
	flag.IntVar(&sc.history, "history", 0, "serve: samples retained per series (0 = 2*(train+horizon))")
	flag.IntVar(&sc.shards, "shards", 0, "serve: state-store shard count (0 = default)")
	flag.Int64Var(&sc.maxBody, "max-body", 0, "serve: ingest body cap in bytes (0 = default, <0 = unlimited)")
	flag.StringVar(&sc.events, "events", "", "serve: append decision events as JSONL to this file")
	flag.StringVar(&sc.spans, "spans", "", "serve: append spans as JSONL to this file (size-rotated)")
	flag.Int64Var(&sc.spansMax, "spans-max-bytes", 0, "serve: span file rotation threshold (0 = default 64 MiB)")
	flag.Parse()

	obs.EnableRuntimeMetrics()
	reg := actuator.NewRegistry()
	var svc *serve.Service
	closeObs := func() {}
	if *serveFlag {
		cfg, err := sc.build(reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "atmd: %v\n", err)
			os.Exit(2)
		}
		closeObs, err = sc.attachObs(&cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "atmd: %v\n", err)
			os.Exit(2)
		}
		svc, err = serve.New(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "atmd: %v\n", err)
			os.Exit(2)
		}
		svc.Start()
		log.Printf("atmd: streaming service on (train=%d horizon=%d spd=%d reuse=%v actuate=%v dry-run=%v policy=%q history=%d shards=%d)",
			sc.train, sc.horizon, sc.spd, sc.reuse, sc.actuate, sc.dryRun, sc.policyFile, cfg.History, svc.Store().Shards())
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newHandler(reg, svc, *pprofEnabled, time.Now()),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("atmd: serving cgroup API on %s (pprof=%v)", *addr, *pprofEnabled)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		// Listener failed before any signal (e.g. port in use).
		fmt.Fprintf(os.Stderr, "atmd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	log.Printf("atmd: signal received, draining for up to %v", *grace)
	if svc != nil {
		// Flip /readyz to 503 before closing the listener so load
		// balancers stop routing while in-flight requests drain.
		svc.BeginDrain()
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "atmd: shutdown: %v\n", err)
		os.Exit(1)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "atmd: %v\n", err)
		os.Exit(1)
	}
	if svc != nil {
		// HTTP is quiet now; stop the engine and let in-flight pipeline
		// steps finish before exiting.
		log.Printf("atmd: draining engine")
		svc.Drain()
	}
	// Flush the durable event/span sinks after the engine stops
	// publishing.
	closeObs()
	log.Printf("atmd: drained, exiting")
}
