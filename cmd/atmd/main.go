// Command atmd is the per-hypervisor actuation daemon from the paper's
// Section IV-C: it exposes cgroup-style per-VM resource limits over a
// web API so an ATM controller can resize VMs on the fly without
// restarting guests.
//
// Usage:
//
//	atmd [-addr :8023]
//
// API:
//
//	GET    /cgroups        list all VM limits
//	GET    /cgroups/<vm>   read one VM's limits
//	PUT    /cgroups/<vm>   set limits, body {"cpu_ghz": 7.2, "ram_gb": 4}
//	DELETE /cgroups/<vm>   remove a VM's cgroup
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"atm/internal/actuator"
)

func main() {
	addr := flag.String("addr", ":8023", "listen address")
	flag.Parse()

	reg := actuator.NewRegistry()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           reg.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("atmd: serving cgroup API on %s", *addr)
	if err := srv.ListenAndServe(); err != nil {
		fmt.Fprintf(os.Stderr, "atmd: %v\n", err)
		os.Exit(1)
	}
}
