package main

import (
	"fmt"
	"os"

	"atm/internal/actuator"
	"atm/internal/actuator/policy"
	"atm/internal/control"
	"atm/internal/core"
	"atm/internal/engine"
	"atm/internal/obs"
	"atm/internal/serve"
)

// serveConfig assembles the streaming-service configuration from the
// daemon's flags; the service itself lives in internal/serve.
type serveConfig struct {
	train, horizon, spd int
	threshold, epsilon  float64
	reuse, actuate      bool
	robust              bool
	dryRun              bool
	policyFile          string
	workers, history    int
	shards              int
	maxBody             int64
	events, spans       string
	spansMax            int64
}

// build turns the flag bundle into a serve.Config, defaulting history
// to two full pipeline windows. backend is the actuation target wired
// in when -actuate (writes) or -dry-run (what-if reads only) ask for
// one — for this daemon, its own cgroup registry.
func (c serveConfig) build(backend actuator.Backend) (serve.Config, error) {
	if c.train <= 0 || c.horizon <= 0 || c.spd <= 0 {
		return serve.Config{}, fmt.Errorf("atmd: -train, -horizon and -spd must be positive")
	}
	cfg := engine.Config{
		Core: core.Config{
			TrainWindows: c.train,
			Horizon:      c.horizon,
			Threshold:    c.threshold,
			Epsilon:      c.epsilon,
			Degraded:     true,
		},
		SamplesPerDay: c.spd,
		Workers:       c.workers,
	}
	if c.reuse {
		cfg.Core.Reuse = core.ReusePolicy{Enabled: true}
	}
	if c.robust {
		// Adaptive trust with the calibrated defaults: plans blend
		// toward the stingy safe allocation when the rolling forecast
		// error degrades (λ and the blend reason surface on every plan,
		// decision event and debug snapshot).
		cfg.Control = control.Config{Enabled: true}
	}
	if c.actuate || c.dryRun {
		// Backend (not the legacy Setter) so policy rails compose in
		// front and the what-if route can read current limits.
		cfg.Backend = backend
	}
	cfg.DryRun = c.dryRun
	if c.policyFile != "" {
		if cfg.Backend == nil {
			return serve.Config{}, fmt.Errorf("atmd: -policy requires -actuate or -dry-run")
		}
		pc, err := policy.Load(c.policyFile)
		if err != nil {
			return serve.Config{}, fmt.Errorf("atmd: -policy: %w", err)
		}
		cfg.Policy = &pc
	}
	history := c.history
	if history <= 0 {
		history = 2 * (c.train + c.horizon)
	}
	return serve.Config{
		History: history,
		Shards:  c.shards,
		Engine:  cfg,
		MaxBody: c.maxBody,
	}, nil
}

// attachObs wires the durable observability sinks the flags asked for:
// -events FILE attaches a JSONL sink to the decision event log, and
// -spans FILE adds a size-rotated span exporter next to the in-memory
// ring. The returned closer flushes both on shutdown.
func (c serveConfig) attachObs(cfg *serve.Config) (func(), error) {
	var closers []func()
	closeAll := func() {
		for _, f := range closers {
			f()
		}
	}
	if c.events != "" {
		f, err := os.Create(c.events)
		if err != nil {
			return nil, fmt.Errorf("atmd: -events: %w", err)
		}
		log := obs.NewEventLog(obs.DefaultEventCap)
		log.AttachSink(f)
		cfg.Events = log
		closers = append(closers, func() {
			log.Close()
			_ = f.Close()
		})
	}
	if c.spans != "" {
		exp, err := obs.NewFileSpanExporter(c.spans, c.spansMax)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("atmd: -spans: %w", err)
		}
		cfg.SpanExporters = append(cfg.SpanExporters, exp)
		closers = append(closers, func() { _ = exp.Close() })
	}
	return closeAll, nil
}
