package main

import (
	"fmt"

	"atm/internal/core"
	"atm/internal/engine"
	"atm/internal/serve"
)

// serveConfig assembles the streaming-service configuration from the
// daemon's flags; the service itself lives in internal/serve.
type serveConfig struct {
	train, horizon, spd int
	threshold, epsilon  float64
	reuse, actuate      bool
	workers, history    int
	shards              int
	maxBody             int64
}

// build turns the flag bundle into a serve.Config, defaulting history
// to two full pipeline windows.
func (c serveConfig) build(setter core.LimitSetter) (serve.Config, error) {
	if c.train <= 0 || c.horizon <= 0 || c.spd <= 0 {
		return serve.Config{}, fmt.Errorf("atmd: -train, -horizon and -spd must be positive")
	}
	cfg := engine.Config{
		Core: core.Config{
			TrainWindows: c.train,
			Horizon:      c.horizon,
			Threshold:    c.threshold,
			Epsilon:      c.epsilon,
			Degraded:     true,
		},
		SamplesPerDay: c.spd,
		Workers:       c.workers,
	}
	if c.reuse {
		cfg.Core.Reuse = core.ReusePolicy{Enabled: true}
	}
	if c.actuate {
		cfg.Setter = setter
	}
	history := c.history
	if history <= 0 {
		history = 2 * (c.train + c.horizon)
	}
	return serve.Config{
		History: history,
		Shards:  c.shards,
		Engine:  cfg,
		MaxBody: c.maxBody,
	}, nil
}
