package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"atm/internal/core"
	"atm/internal/engine"
	"atm/internal/state"
)

// service bundles the streaming ATM stack the daemon runs in -serve
// mode: the state store fed by the ingestion API, the engine
// scheduling rolling pipeline steps over it, and the engine's
// lifecycle (cancel + done) for graceful drain.
type service struct {
	store  *state.Store
	engine *engine.Engine

	cancel context.CancelFunc
	done   chan struct{}
}

// newService builds the store and engine; the engine loop is not
// started yet (call start, or drive engine.Sync directly in tests).
func newService(history int, cfg engine.Config) (*service, error) {
	st, err := state.NewStore(history)
	if err != nil {
		return nil, err
	}
	eng, err := engine.New(st, cfg)
	if err != nil {
		return nil, err
	}
	return &service{store: st, engine: eng}, nil
}

// start launches the engine loop.
func (s *service) start() {
	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		_ = s.engine.Run(ctx)
	}()
}

// drain stops the engine loop and waits for in-flight steps to finish
// (engine.Run only returns after the current scheduling pass
// completes). Safe to call when start was never invoked.
func (s *service) drain() {
	if s.cancel == nil {
		return
	}
	s.cancel()
	<-s.done
}

// tick is one ingested sampling interval: usage percent per VM, in
// registered VM order.
type tick struct {
	CPU []float64 `json:"cpu"`
	RAM []float64 `json:"ram"`
}

// ingestRequest is the POST /v1/boxes/{id}/samples body. Box carries
// the box's static configuration; it is required on (and only
// consulted for) the first call for a box — re-announcements are
// idempotent, shape changes rejected.
type ingestRequest struct {
	Box     *state.BoxMeta `json:"box,omitempty"`
	Samples []tick         `json:"samples"`
}

// jsonError mirrors the actuator API's error convention.
func jsonError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// boxRoute splits /v1/boxes/{id}/{verb} and returns id, verb.
func boxRoute(path string) (string, string, bool) {
	rest, ok := strings.CutPrefix(path, "/v1/boxes/")
	if !ok {
		return "", "", false
	}
	id, verb, ok := strings.Cut(rest, "/")
	if !ok || id == "" || strings.Contains(verb, "/") {
		return "", "", false
	}
	return id, verb, true
}

// handler routes the streaming API:
//
//	POST /v1/boxes/{id}/samples  ingest usage ticks (registering the
//	                             box from the body's "box" meta on
//	                             first contact)
//	GET  /v1/boxes/{id}/plan     latest resize plan for the box
func (s *service) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id, verb, ok := boxRoute(r.URL.Path)
		if !ok {
			jsonError(w, http.StatusNotFound, "unknown route %s", r.URL.Path)
			return
		}
		switch verb {
		case "samples":
			if r.Method != http.MethodPost {
				jsonError(w, http.StatusMethodNotAllowed, "samples is POST-only")
				return
			}
			s.handleSamples(w, r, id)
		case "plan":
			if r.Method != http.MethodGet {
				jsonError(w, http.StatusMethodNotAllowed, "plan is GET-only")
				return
			}
			s.handlePlan(w, id)
		default:
			jsonError(w, http.StatusNotFound, "unknown route %s", r.URL.Path)
		}
	})
}

func (s *service) handleSamples(w http.ResponseWriter, r *http.Request, id string) {
	var req ingestRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		jsonError(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	if req.Box != nil {
		if req.Box.ID == "" {
			req.Box.ID = id
		}
		if req.Box.ID != id {
			jsonError(w, http.StatusBadRequest, "body box id %q != url id %q", req.Box.ID, id)
			return
		}
		if err := s.store.Register(*req.Box); err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, state.ErrShapeMismatch) {
				status = http.StatusConflict
			}
			jsonError(w, status, "register: %v", err)
			return
		}
	}
	total := 0
	for i, tk := range req.Samples {
		t, err := s.store.Append(id, tk.CPU, tk.RAM)
		if err != nil {
			switch {
			case errors.Is(err, state.ErrUnknownBox):
				jsonError(w, http.StatusNotFound,
					"box %q not registered: include \"box\" meta in the first request", id)
			case errors.Is(err, state.ErrShapeMismatch):
				jsonError(w, http.StatusBadRequest, "sample %d: %v", i, err)
			default:
				jsonError(w, http.StatusInternalServerError, "sample %d: %v", i, err)
			}
			return
		}
		total = t
	}
	if len(req.Samples) == 0 {
		// Registration-only request: report the current total.
		t, err := s.store.Total(id)
		if err != nil {
			jsonError(w, http.StatusNotFound, "box %q not registered", id)
			return
		}
		total = t
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"box": id, "total": total})
}

func (s *service) handlePlan(w http.ResponseWriter, id string) {
	if _, err := s.store.Meta(id); err != nil {
		jsonError(w, http.StatusNotFound, "box %q not registered", id)
		return
	}
	plan, ok := s.engine.Plan(id)
	if !ok {
		jsonError(w, http.StatusNotFound,
			"box %q has no plan yet: the first plan needs %d samples", id, s.engine.Need(0))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(plan)
}

// serveConfig assembles the engine configuration from the daemon's
// flags.
type serveConfig struct {
	train, horizon, spd int
	threshold, epsilon  float64
	reuse, actuate      bool
	workers, history    int
}

// build turns the flag bundle into store history + engine config,
// defaulting history to two full pipeline windows.
func (c serveConfig) build(setter core.LimitSetter) (int, engine.Config, error) {
	if c.train <= 0 || c.horizon <= 0 || c.spd <= 0 {
		return 0, engine.Config{}, fmt.Errorf("atmd: -train, -horizon and -spd must be positive")
	}
	cfg := engine.Config{
		Core: core.Config{
			TrainWindows: c.train,
			Horizon:      c.horizon,
			Threshold:    c.threshold,
			Epsilon:      c.epsilon,
			Degraded:     true,
		},
		SamplesPerDay: c.spd,
		Workers:       c.workers,
	}
	if c.reuse {
		cfg.Core.Reuse = core.ReusePolicy{Enabled: true}
	}
	if c.actuate {
		cfg.Setter = setter
	}
	history := c.history
	if history <= 0 {
		history = 2 * (c.train + c.horizon)
	}
	return history, cfg, nil
}
