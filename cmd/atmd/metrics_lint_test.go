package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"atm/internal/actuator"
	"atm/internal/obs"
	"atm/internal/serve"
	"atm/internal/state"
	"atm/internal/trace"
)

// Exposition-format grammar for the subset this registry emits.
var (
	metricNameRe = regexp.MustCompile(`^atm_[a-z0-9_]+$`)
	helpLineRe   = regexp.MustCompile(`^# HELP (atm_[a-z0-9_]+) .+$`)
	typeLineRe   = regexp.MustCompile(`^# TYPE (atm_[a-z0-9_]+) (counter|gauge|histogram)$`)
	sampleLineRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (?:[0-9eE+.\-]+|NaN|[+-]Inf)$`)
	labelPairRe  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

// baseName strips the histogram sample suffixes so every sample can be
// checked against the atm_ naming scheme.
func baseName(name string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suffix) {
			return strings.TrimSuffix(name, suffix)
		}
	}
	return name
}

// TestMetricsExpositionConformance scrapes the production mux after
// real traffic and lints every line of /metrics: the atm_ naming
// scheme, HELP/TYPE before samples, parseable samples and labels, and
// bounded per-shard label cardinality.
func TestMetricsExpositionConformance(t *testing.T) {
	obs.EnableRuntimeMetrics()
	svc, spd := testService(t, nil)
	srv := httptest.NewServer(newHandler(actuator.NewRegistry(), svc, false, time.Now()))
	defer srv.Close()
	client := srv.Client()

	// Drive every route family once so the HTTP vec metrics have
	// children: ingest to the first plan, read it back, hit the debug
	// and events endpoints.
	tr := trace.Generate(trace.GenConfig{Boxes: 1, Days: 4, SamplesPerDay: spd, Seed: 7, GapFraction: 1e-9})
	b := &tr.Boxes[0]
	meta := state.MetaOf(b)
	need := svc.Engine().Need(0)
	req := serve.SamplesRequest{Box: &meta, Samples: make([]serve.Tick, need)}
	for k := 0; k < need; k++ {
		tick := serve.Tick{CPU: make([]float64, len(b.VMs)), RAM: make([]float64, len(b.VMs))}
		for v := range b.VMs {
			tick.CPU[v] = b.VMs[v].CPU[k]
			tick.RAM[v] = b.VMs[v].RAM[k]
		}
		req.Samples[k] = tick
	}
	if code, out := postSamples(t, client, srv.URL+"/v1/boxes/"+b.ID+"/samples", req); code != http.StatusOK {
		t.Fatalf("ingest status %d: %v", code, out)
	}
	svc.Engine().Sync(context.Background())
	for _, path := range []string{
		"/v1/boxes/" + b.ID + "/plan",
		"/v1/boxes/" + b.ID + "/debug",
		"/v1/events",
		"/healthz",
	} {
		resp, err := client.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}

	resp, err := client.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()

	type familyState struct {
		helped, typed, sampled bool
	}
	families := map[string]*familyState{}
	fam := func(name string) *familyState {
		f := families[name]
		if f == nil {
			f = &familyState{}
			families[name] = f
		}
		return f
	}
	shardValues := map[string]map[string]bool{} // family -> shard label values
	lineNo := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		fail := func(format string, args ...any) {
			t.Helper()
			t.Fatalf("/metrics line %d: %s: %q", lineNo, fmt.Sprintf(format, args...), line)
		}
		if strings.HasPrefix(line, "# HELP ") {
			m := helpLineRe.FindStringSubmatch(line)
			if m == nil {
				fail("malformed HELP")
			}
			f := fam(m[1])
			if f.sampled {
				fail("HELP after samples of %s", m[1])
			}
			f.helped = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			m := typeLineRe.FindStringSubmatch(line)
			if m == nil {
				fail("malformed TYPE or non-atm_ family")
			}
			f := fam(m[1])
			if f.sampled {
				fail("TYPE after samples of %s", m[1])
			}
			f.typed = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			fail("unknown comment directive")
		}
		m := sampleLineRe.FindStringSubmatch(line)
		if m == nil {
			fail("unparseable sample")
		}
		name := baseName(m[1])
		if !metricNameRe.MatchString(name) {
			fail("metric %s outside the atm_ naming scheme", name)
		}
		f := fam(name)
		if !f.helped || !f.typed {
			fail("sample of %s before its HELP/TYPE", name)
		}
		f.sampled = true
		if m[3] != "" {
			for _, pair := range strings.Split(m[3], ",") {
				lm := labelPairRe.FindStringSubmatch(pair)
				if lm == nil {
					fail("malformed label pair %q", pair)
				}
				if lm[1] == "shard" {
					set := shardValues[name]
					if set == nil {
						set = map[string]bool{}
						shardValues[name] = set
					}
					set[lm[2]] = true
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan /metrics: %v", err)
	}

	for name, f := range families {
		if f.helped != f.typed {
			t.Errorf("family %s: HELP/TYPE mismatch (help=%v type=%v)", name, f.helped, f.typed)
		}
	}
	// Per-shard label cardinality stays bounded by the default shard
	// count — box ids must never leak into labels.
	for name, set := range shardValues {
		if len(set) > state.DefaultShards {
			t.Errorf("family %s: %d shard label values, cap is %d", name, len(set), state.DefaultShards)
		}
	}

	// The new observability families are live on the production scrape.
	for _, want := range []string{
		"atm_forecast_mape", "atm_tickets_predicted_total", "atm_tickets_realized_total",
		"atm_events_published_total", "atm_go_goroutines",
	} {
		if _, ok := families[want]; !ok {
			t.Errorf("scrape missing family %s", want)
		}
	}
}
