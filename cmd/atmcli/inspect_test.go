package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"atm/internal/core"
	"atm/internal/engine"
	"atm/internal/obs"
	"atm/internal/score"
	"atm/internal/serve"
)

// TestPrintDebugRendersFullStory feeds printDebug a canned debug
// payload and checks every section — plan, decision, scorecard,
// events, span tree — lands in the report with the right nesting.
func TestPrintDebugRendersFullStory(t *testing.T) {
	ts := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	dbg := serve.DebugResponse{
		BoxDebug: engine.BoxDebug{
			Box:   "box-0001",
			Shard: 2,
			Steps: 3,
			Plan: &engine.Plan{
				Box: "box-0001", Step: 2, Pass: 7,
				CPUSizes: []float64{4, 2}, RAMSizes: []float64{8, 4},
				TicketsBefore: 9, TicketsAfter: 1, MeanMAPE: 0.12,
				Research: false, Reason: "refit", TraceID: "t1",
				Lambda: 0.45, BlendReason: "recovering",
			},
			Decision: core.Decision{Research: false, Reason: core.ReasonRefit, Age: 1},
		},
		Scorecard: &score.Card{
			Box: "box-0001", Steps: 3, LastMAPE: 0.12, RollingMAPE: 0.1,
			RollingN: 3, TicketsPredicted: 2, TicketsRealized: 4,
			LastOverUnits: 1.5, LastUnderUnits: 0.5,
		},
		Events: []obs.Event{
			{Time: ts, Type: "plan", Box: "box-0001", Step: 2, Shard: 2,
				Reason: "refit", TicketsBefore: 9, TicketsAfter: 1, DeltaVMs: 1,
				Lambda: 0.45, BlendReason: "recovering"},
		},
		Spans: []obs.SpanData{
			{TraceID: "t1", SpanID: "s2", ParentID: "s1", Name: "engine.step",
				Start: ts.Add(time.Millisecond), DurationNS: 2e6},
			{TraceID: "t1", SpanID: "s1", Name: "serve.ingest",
				Start: ts, DurationNS: 5e6},
		},
	}
	var buf bytes.Buffer
	printDebug(&buf, &dbg)
	out := buf.String()

	for _, want := range []string{
		"box box-0001 (shard 2): 3 steps",
		"plan (step 2, pass 7)",
		"tickets 9 -> 1",
		"decision: refit",
		"trust: λ=0.45 (recovering)",
		"trace: t1",
		"forecast scorecard",
		"tickets predicted 2 realized 4",
		"recent events",
		"(tickets 9->1, Δ1 VMs) λ=0.45/recovering",
		"span tree",
		"serve.ingest",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// The child span is indented under its root.
	if !strings.Contains(out, "    engine.step") {
		t.Errorf("engine.step not nested under serve.ingest:\n%s", out)
	}
	ingestAt := strings.Index(out, "serve.ingest")
	stepAt := strings.Index(out, "engine.step")
	if ingestAt > stepAt {
		t.Errorf("root span printed after its child:\n%s", out)
	}
}

// TestPrintDebugEmptyBox covers a registered-but-unstepped box: no
// plan, no scorecard, no spans.
func TestPrintDebugEmptyBox(t *testing.T) {
	var buf bytes.Buffer
	printDebug(&buf, &serve.DebugResponse{
		BoxDebug: engine.BoxDebug{Box: "b9", Shard: 1},
	})
	out := buf.String()
	if !strings.Contains(out, "no plan yet") {
		t.Errorf("empty box report missing placeholder:\n%s", out)
	}
	if strings.Contains(out, "span tree") || strings.Contains(out, "scorecard") {
		t.Errorf("empty box report has phantom sections:\n%s", out)
	}
}
