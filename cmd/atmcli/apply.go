package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"atm/internal/actuator"
	"atm/internal/core"
	"atm/internal/predict"
	"atm/internal/resilience"
	"atm/internal/spatial"
	"atm/internal/trace"
)

// applyOpts carries the actuation flags of the apply subcommand.
type applyOpts struct {
	daemon           string
	retries          int
	breakerThreshold int
	timeout          time.Duration
	threshold        float64
}

// applyRun runs the ATM pipeline over the whole trace in degraded mode
// and pushes every box's resize decision to the hypervisor daemon
// through the retried, breaker-guarded client. Boxes whose models fail
// ship the stingy fallback; boxes whose actuation fails partway are
// rolled back to their pre-push limits. The exit status is 0 only when
// no box was left un-actuated or dirty.
func applyRun(tr *trace.Trace, o applyOpts) {
	if o.daemon == "" {
		fmt.Fprintln(os.Stderr, "atmcli: apply requires -daemon")
		os.Exit(2)
	}
	spd := tr.SamplesPerDay
	cfg := core.Config{
		Spatial:  spatial.Config{Method: spatial.MethodCBC},
		Temporal: func() predict.Model { return &predict.SeasonalNaive{Period: spd} },
		// Train on all but the last day, resize over that day.
		TrainWindows:   (tr.Days - 1) * spd,
		Horizon:        spd,
		Threshold:      o.threshold,
		Epsilon:        5,
		UseLowerBounds: true,
		Degraded:       true,
	}
	boxes := make([]*trace.Box, len(tr.Boxes))
	for i := range tr.Boxes {
		boxes[i] = &tr.Boxes[i]
	}

	ctx, cancel := context.WithTimeout(context.Background(), o.timeout)
	defer cancel()
	results, runErr := core.RunContext(ctx, boxes, spd, cfg)
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "atmcli: degraded boxes:\n%v\n", runErr)
	}

	rc := actuator.NewResilient(actuator.NewClient(o.daemon, nil), actuator.ResilientConfig{
		Retry:   resilience.Policy{MaxAttempts: o.retries},
		Breaker: resilience.BreakerConfig{FailureThreshold: o.breakerThreshold},
	})

	var applied, degraded, rolledBack, failed int
	for _, res := range results {
		if res == nil {
			failed++
			continue
		}
		if res.Degraded {
			degraded++
		}
		err := core.ApplyBox(ctx, rc, res)
		var pe *core.PartialApplyError
		switch {
		case err == nil:
			applied++
		case errors.As(err, &pe) && pe.RolledBackClean():
			rolledBack++
			fmt.Fprintf(os.Stderr, "atmcli: %s rolled back: %v\n", res.Box.ID, err)
		default:
			failed++
			fmt.Fprintf(os.Stderr, "atmcli: %s FAILED: %v\n", res.Box.ID, err)
		}
	}
	fmt.Printf("applied %d/%d boxes (%d degraded to stingy fallback), %d rolled back, %d failed; breaker %v\n",
		applied, len(results), degraded, rolledBack, failed, rc.Breaker().State())
	if failed > 0 {
		os.Exit(1)
	}
}
