package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"atm/internal/actuator"
	"atm/internal/actuator/policy"
	"atm/internal/core"
	"atm/internal/predict"
	"atm/internal/resilience"
	"atm/internal/spatial"
	"atm/internal/trace"
)

// Apply exit codes. Scripts branch on these: 0 is a fully clean round,
// 1 means at least one box failed hard (possibly left dirty), 2 is an
// operator error (bad flags, unreadable policy), and 3 is the
// "survived but not clean" band — every box either applied, rolled
// back atomically, or shipped the stingy degraded fallback.
const (
	exitOK      = 0
	exitFailed  = 1
	exitUsage   = 2
	exitPartial = 3
)

// applyOpts carries the actuation flags of the apply subcommand.
type applyOpts struct {
	daemon           string
	retries          int
	breakerThreshold int
	timeout          time.Duration
	threshold        float64
	policyFile       string
	dryRun           bool
}

// applyRun is the os.Exit shim around applyMain.
func applyRun(tr *trace.Trace, o applyOpts) {
	os.Exit(applyMain(tr, o, os.Stdout, os.Stderr))
}

// applyMain runs the ATM pipeline over the whole trace in degraded
// mode and pushes every box's resize decision to the hypervisor daemon
// through the retried, breaker-guarded client — with -policy, through
// the operator's clamp/rate rails first. Boxes whose models fail ship
// the stingy fallback; boxes whose actuation fails partway are rolled
// back to their pre-push limits. With -dry-run nothing is written:
// each box's what-if actuation plan is computed (reads only) and
// summarized instead.
func applyMain(tr *trace.Trace, o applyOpts, stdout, stderr io.Writer) int {
	if o.daemon == "" {
		fmt.Fprintln(stderr, "atmcli: apply requires -daemon")
		return exitUsage
	}
	client, cerr := actuator.NewClient(o.daemon, nil)
	if cerr != nil {
		fmt.Fprintf(stderr, "atmcli: %v\n", cerr)
		return exitUsage
	}
	var pc policy.Config
	if o.policyFile != "" {
		var err error
		if pc, err = policy.Load(o.policyFile); err != nil {
			fmt.Fprintf(stderr, "atmcli: %v\n", err)
			return exitUsage
		}
	}
	// Backend composition, innermost out: raw client, policy rails in
	// front of every write, then retry + breaker on the outside so a
	// rate-limited (429) write is retried with backoff like any other
	// transient fault.
	var backend actuator.Backend = client
	if o.policyFile != "" {
		backend = policy.NewGuard(backend, pc)
	}
	rc := actuator.NewResilientBackend(backend, actuator.ResilientConfig{
		Retry:   resilience.Policy{MaxAttempts: o.retries},
		Breaker: resilience.BreakerConfig{FailureThreshold: o.breakerThreshold},
	})

	spd := tr.SamplesPerDay
	cfg := core.Config{
		Spatial:  spatial.Config{Method: spatial.MethodCBC},
		Temporal: func() predict.Model { return &predict.SeasonalNaive{Period: spd} },
		// Train on all but the last day, resize over that day.
		TrainWindows:   (tr.Days - 1) * spd,
		Horizon:        spd,
		Threshold:      o.threshold,
		Epsilon:        5,
		UseLowerBounds: true,
		Degraded:       true,
	}
	boxes := make([]*trace.Box, len(tr.Boxes))
	for i := range tr.Boxes {
		boxes[i] = &tr.Boxes[i]
	}

	ctx, cancel := context.WithTimeout(context.Background(), o.timeout)
	defer cancel()
	results, runErr := core.RunContext(ctx, boxes, spd, cfg)
	if runErr != nil {
		fmt.Fprintf(stderr, "atmcli: degraded boxes:\n%v\n", runErr)
	}

	if o.dryRun {
		return applyDryRun(ctx, rc, pc, results, stdout, stderr)
	}

	var applied, degraded, rolledBack, failed int
	for _, res := range results {
		if res == nil {
			failed++
			continue
		}
		if res.Degraded {
			degraded++
		}
		err := core.ApplyBox(ctx, rc, res)
		var pe *core.PartialApplyError
		switch {
		case err == nil:
			applied++
		case errors.As(err, &pe) && pe.RolledBackClean():
			rolledBack++
			fmt.Fprintf(stderr, "atmcli: %s rolled back: %v\n", res.Box.ID, err)
		default:
			failed++
			fmt.Fprintf(stderr, "atmcli: %s FAILED: %v\n", res.Box.ID, err)
		}
	}
	fmt.Fprintf(stdout, "applied %d/%d boxes (%d degraded to stingy fallback), %d rolled back, %d failed; breaker %v\n",
		applied, len(results), degraded, rolledBack, failed, rc.Breaker().State())
	switch {
	case failed > 0:
		fmt.Fprintf(stderr, "atmcli: apply FAILED: %d of %d boxes not actuated (exit %d)\n",
			failed, len(results), exitFailed)
		return exitFailed
	case rolledBack > 0 || degraded > 0:
		fmt.Fprintf(stderr, "atmcli: apply partial: %d rolled back, %d degraded to stingy fallback (exit %d)\n",
			rolledBack, degraded, exitPartial)
		return exitPartial
	}
	return exitOK
}

// applyDryRun prints each box's what-if actuation plan — what an apply
// round would write, clamp or refuse — without a single mutating call:
// building the plans issues only GetLimits reads against the daemon.
func applyDryRun(ctx context.Context, b actuator.Backend, pc policy.Config, results []*core.BoxResult, stdout, stderr io.Writer) int {
	var boxesPlanned, writes, rejects, clamped, failed int
	for _, res := range results {
		if res == nil || res.CPU == nil || res.RAM == nil {
			failed++
			continue
		}
		vms := make([]string, len(res.Box.VMs))
		for v := range res.Box.VMs {
			vms[v] = res.Box.VMs[v].ID
		}
		plan := policy.WhatIf(ctx, b, pc, res.Box.ID, vms, res.CPU.Sizes, res.RAM.Sizes)
		boxesPlanned++
		writes += plan.Writes
		rejects += plan.Rejects
		for _, row := range plan.Rows {
			if len(row.Violations) > 0 && row.Action != policy.ActionReject {
				clamped++
			}
		}
		fmt.Fprintf(stdout, "%s: %d writes, %d rejects (%d VMs)\n",
			res.Box.ID, plan.Writes, plan.Rejects, len(plan.Rows))
	}
	fmt.Fprintf(stdout, "dry-run: %d boxes planned, %d writes, %d clamped, %d rejects, %d failed; nothing written\n",
		boxesPlanned, writes, clamped, rejects, failed)
	if failed > 0 {
		fmt.Fprintf(stderr, "atmcli: dry-run: %d boxes produced no plan (exit %d)\n", failed, exitFailed)
		return exitFailed
	}
	return exitOK
}
