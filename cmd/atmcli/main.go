// Command atmcli inspects a trace CSV (as written by tracegen) and
// drives resize decisions into a hypervisor daemon: fleet statistics,
// per-box ticket breakdowns, culprit VMs, and a fault-tolerant apply
// round — the first-response tooling an operator would want next to
// ATM.
//
// Usage:
//
//	atmcli stats    -trace trace.csv [-threshold 0.6]
//	atmcli box      -trace trace.csv -id box-0003 [-threshold 0.6]
//	atmcli culprits -trace trace.csv [-threshold 0.6] [-top 10]
//	atmcli apply    -trace trace.csv -daemon http://host:8023 [-retries 4]
//	                [-breaker-threshold 5] [-timeout 10m] [-threshold 0.6]
//	                [-policy rails.json] [-dry-run]
//	atmcli stream   -trace trace.csv -daemon http://host:8023 [-rate 100]
//	                [-batch 8] [-boxes 4] [-timeout 10m]
//	atmcli inspect  -daemon http://host:8023 -id box-0003
//
// inspect needs no trace: it renders a running daemon's per-box debug
// state — the latest plan, the research/refit decision behind it, the
// forecast scorecard, recent decision events and the last step's span
// tree.
//
// apply exits 0 on a fully clean round, 1 when any box failed hard, 2
// on operator error, and 3 when the round survived but was not clean
// (boxes rolled back atomically or degraded to the stingy fallback).
// -policy interposes clamp/rate rails before every write; -dry-run
// prints the per-box what-if plans without a single mutating call.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"atm/internal/ticket"
	"atm/internal/timeseries"
	"atm/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	tracePath := fs.String("trace", "", "trace CSV file (required)")
	threshold := fs.Float64("threshold", 0.6, "ticket threshold")
	boxID := fs.String("id", "", "box id (for 'box')")
	top := fs.Int("top", 10, "number of rows (for 'culprits')")
	daemon := fs.String("daemon", "", "atmd base URL (for 'apply' and 'stream')")
	retries := fs.Int("retries", 4, "SetLimits attempts per VM (for 'apply')")
	breakerThreshold := fs.Int("breaker-threshold", 5, "consecutive failures before the circuit opens (for 'apply')")
	policyFile := fs.String("policy", "", "JSON policy file with min/max/step clamps and write rate limits (for 'apply')")
	dryRun := fs.Bool("dry-run", false, "compute and print per-box what-if actuation plans without writing (for 'apply')")
	timeout := fs.Duration("timeout", 10*time.Minute, "overall deadline for the apply/stream round")
	rate := fs.Float64("rate", 0, "ticks per second to replay (for 'stream'; 0 = full speed)")
	batch := fs.Int("batch", 8, "ticks per ingestion POST (for 'stream')")
	boxLimit := fs.Int("boxes", 0, "stream only the first N boxes (for 'stream'; 0 = all)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	if cmd == "inspect" {
		// inspect talks to a live daemon, not a trace file.
		inspectRun(inspectOpts{daemon: *daemon, id: *boxID, timeout: *timeout})
		return
	}
	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "atmcli: -trace is required")
		os.Exit(2)
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	tr, err := trace.ReadCSV(f)
	if err != nil {
		fail(err)
	}

	switch cmd {
	case "stats":
		stats(tr, *threshold)
	case "box":
		boxDetail(tr, *boxID, *threshold)
	case "culprits":
		culprits(tr, *threshold, *top)
	case "apply":
		applyRun(tr, applyOpts{
			daemon:           *daemon,
			retries:          *retries,
			breakerThreshold: *breakerThreshold,
			timeout:          *timeout,
			threshold:        *threshold,
			policyFile:       *policyFile,
			dryRun:           *dryRun,
		})
	case "stream":
		streamRun(tr, streamOpts{
			daemon:  *daemon,
			rate:    *rate,
			batch:   *batch,
			boxes:   *boxLimit,
			timeout: *timeout,
		})
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: atmcli <stats|box|culprits|apply|stream> -trace file.csv [flags]")
	fmt.Fprintln(os.Stderr, "       atmcli inspect -daemon URL -id box-0003")
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "atmcli: %v\n", err)
	os.Exit(1)
}

// stats prints fleet-level numbers.
func stats(tr *trace.Trace, th float64) {
	fmt.Printf("boxes: %d  VMs: %d  samples/series: %d (%d/day x %d days)\n",
		len(tr.Boxes), tr.NumVMs(), tr.Samples(), tr.SamplesPerDay, tr.Days)
	fmt.Printf("gap-free boxes: %d\n\n", len(tr.GapFree()))
	for _, r := range [...]trace.Resource{trace.CPU, trace.RAM} {
		var perBox []float64
		ticketed := 0
		for i := range tr.Boxes {
			b := &tr.Boxes[i]
			st, err := ticket.Analyze(b.Demands(r), b.Capacities(r), th)
			if err != nil {
				fail(err)
			}
			perBox = append(perBox, float64(st.Total))
			if st.Total > 0 {
				ticketed++
			}
		}
		mean, std := timeseries.MeanStd(perBox)
		fmt.Printf("%s tickets @%.0f%%: %.1f±%.1f per box; %.1f%% of boxes ticketed\n",
			r, th*100, mean, std, 100*float64(ticketed)/float64(len(tr.Boxes)))
	}
}

// boxDetail prints one box's per-VM breakdown.
func boxDetail(tr *trace.Trace, id string, th float64) {
	if id == "" {
		fmt.Fprintln(os.Stderr, "atmcli: box requires -id")
		os.Exit(2)
	}
	for i := range tr.Boxes {
		b := &tr.Boxes[i]
		if b.ID != id {
			continue
		}
		fmt.Printf("box %s: %d VMs, capacity %.1f GHz / %.1f GB, gaps: %v\n\n",
			b.ID, len(b.VMs), b.CPUCapGHz, b.RAMCapGB, b.HasGaps())

		for v := range b.VMs {
			vm := &b.VMs[v]
			cpuT := ticket.Count(vm.Demand(trace.CPU), vm.CPUCapGHz, th)
			ramT := ticket.Count(vm.Demand(trace.RAM), vm.RAMCapGB, th)
			fmt.Printf("%-14s cpu: mean %5.1f%% peak %6.1f%% tickets %3d | ram: mean %5.1f%% peak %6.1f%% tickets %3d\n",
				vm.ID,
				vm.CPU.Mean(), vm.CPU.Max(), cpuT,
				vm.RAM.Mean(), vm.RAM.Max(), ramT)
		}
		return
	}
	fmt.Fprintf(os.Stderr, "atmcli: box %q not found\n", id)
	os.Exit(1)
}

// culprits prints the fleet's worst VMs.
func culprits(tr *trace.Trace, th float64, top int) {
	type row struct {
		vm      string
		box     string
		tickets int
	}
	var rows []row
	for i := range tr.Boxes {
		b := &tr.Boxes[i]
		for v := range b.VMs {
			vm := &b.VMs[v]
			n := ticket.Count(vm.Demand(trace.CPU), vm.CPUCapGHz, th) +
				ticket.Count(vm.Demand(trace.RAM), vm.RAMCapGB, th)
			if n > 0 {
				rows = append(rows, row{vm.ID, b.ID, n})
			}
		}
	}
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].tickets != rows[b].tickets {
			return rows[a].tickets > rows[b].tickets
		}
		return rows[a].vm < rows[b].vm
	})
	fmt.Printf("top culprit VMs @%.0f%% threshold:\n", th*100)
	for i, r := range rows {
		if i >= top {
			break
		}
		fmt.Printf("%3d. %-16s (%s)  %d tickets\n", i+1, r.vm, r.box, r.tickets)
	}
	if len(rows) == 0 {
		fmt.Println("  (none)")
	}
}
