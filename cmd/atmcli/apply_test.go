package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"atm/internal/actuator"
	"atm/internal/trace"
)

// countingDaemon serves the real cgroup API while counting mutating
// requests (PUT/DELETE) separately from reads — the HTTP-level proof
// that a dry run never writes.
func countingDaemon(t *testing.T) (*httptest.Server, *atomic.Int64, *actuator.Registry) {
	t.Helper()
	reg := actuator.NewRegistry()
	var writes atomic.Int64
	inner := reg.Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPut || r.Method == http.MethodDelete {
			writes.Add(1)
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	return srv, &writes, reg
}

func applyTrace() *trace.Trace {
	return trace.Generate(trace.GenConfig{
		Boxes: 2, Days: 3, SamplesPerDay: 16, Seed: 5, GapFraction: 1e-9,
	})
}

func runApply(t *testing.T, o applyOpts) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := applyMain(applyTrace(), o, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestApplyCleanRound pushes a healthy trace into a healthy daemon:
// exit 0 and one cgroup per VM.
func TestApplyCleanRound(t *testing.T) {
	srv, writes, reg := countingDaemon(t)
	code, stdout, stderr := runApply(t, applyOpts{
		daemon: srv.URL, retries: 3, breakerThreshold: 100, timeout: time.Minute, threshold: 0.6,
	})
	if code != exitOK {
		t.Fatalf("exit %d, want %d\nstdout: %s\nstderr: %s", code, exitOK, stdout, stderr)
	}
	if writes.Load() == 0 || len(reg.List()) == 0 {
		t.Fatalf("clean apply wrote nothing (writes=%d, cgroups=%d)", writes.Load(), len(reg.List()))
	}
	if !strings.Contains(stdout, "applied 2/2 boxes") {
		t.Errorf("summary missing: %q", stdout)
	}
}

// TestApplyDryRunZeroWrites is the counting-backend smoke check behind
// `make whatif`: -dry-run must print per-box plans and leave the
// daemon's mutating-request counter at exactly zero.
func TestApplyDryRunZeroWrites(t *testing.T) {
	srv, writes, reg := countingDaemon(t)
	code, stdout, stderr := runApply(t, applyOpts{
		daemon: srv.URL, retries: 3, breakerThreshold: 100, timeout: time.Minute, threshold: 0.6,
		dryRun: true,
	})
	if code != exitOK {
		t.Fatalf("exit %d, want %d\nstdout: %s\nstderr: %s", code, exitOK, stdout, stderr)
	}
	if n := writes.Load(); n != 0 {
		t.Fatalf("dry run issued %d mutating requests, want 0", n)
	}
	if len(reg.List()) != 0 {
		t.Fatalf("dry run created cgroups: %v", reg.List())
	}
	if !strings.Contains(stdout, "nothing written") {
		t.Errorf("dry-run summary missing: %q", stdout)
	}
}

// TestApplyPolicyRails runs a real apply under a max-CPU clamp policy:
// everything the daemon records must respect the rail.
func TestApplyPolicyRails(t *testing.T) {
	srv, _, reg := countingDaemon(t)
	const maxCPU = 0.25
	pf := filepath.Join(t.TempDir(), "rails.json")
	if err := os.WriteFile(pf, []byte(`{"rules":[{"match":"*","max_cpu_ghz":0.25}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runApply(t, applyOpts{
		daemon: srv.URL, retries: 3, breakerThreshold: 100, timeout: time.Minute, threshold: 0.6,
		policyFile: pf,
	})
	if code != exitOK {
		t.Fatalf("exit %d, want %d\nstdout: %s\nstderr: %s", code, exitOK, stdout, stderr)
	}
	snap := reg.Snapshot()
	if len(snap) == 0 {
		t.Fatal("no cgroups written")
	}
	for id, l := range snap {
		if l.CPUGHz > maxCPU {
			t.Errorf("%s: cpu %v exceeds policy rail %v", id, l.CPUGHz, maxCPU)
		}
	}
}

// TestApplyPartialExitCode seeds a daemon that starts refusing writes
// partway: boxes that fail mid-push roll back atomically and apply
// reports the distinct partial/failed statuses with a one-line
// summary.
func TestApplyPartialExitCode(t *testing.T) {
	reg := actuator.NewRegistry()
	inner := reg.Handler()
	var puts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPut {
			// Let the first box's VMs through, then reject every later
			// write with a terminal 400 so retries cannot save it.
			if puts.Add(1) > 2 {
				http.Error(w, "quota exhausted", http.StatusBadRequest)
				return
			}
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)

	code, stdout, stderr := runApply(t, applyOpts{
		daemon: srv.URL, retries: 2, breakerThreshold: 1000, timeout: time.Minute, threshold: 0.6,
	})
	// Every partially-pushed box must roll back clean (deletes are
	// still allowed), so this is the partial band, not a hard failure.
	if code != exitPartial {
		t.Fatalf("exit %d, want %d\nstdout: %s\nstderr: %s", code, exitPartial, stdout, stderr)
	}
	if !strings.Contains(stderr, "apply partial") {
		t.Errorf("missing one-line partial summary on stderr: %q", stderr)
	}
}

// TestApplyUsageErrors pins exit 2 for operator mistakes.
func TestApplyUsageErrors(t *testing.T) {
	if code, _, _ := runApply(t, applyOpts{timeout: time.Minute}); code != exitUsage {
		t.Errorf("missing -daemon: exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runApply(t, applyOpts{daemon: "not-a-url", timeout: time.Minute}); code != exitUsage {
		t.Errorf("bad daemon URL: exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runApply(t, applyOpts{
		daemon: "http://localhost:1", policyFile: "/nonexistent/rails.json", timeout: time.Minute,
	}); code != exitUsage {
		t.Errorf("unreadable policy: exit %d, want %d", code, exitUsage)
	}
}
