package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"time"

	"atm/internal/obs"
	"atm/internal/serve"
)

// inspectOpts parameterizes the inspect subcommand.
type inspectOpts struct {
	// daemon is the atmd base URL (required).
	daemon string
	// id is the box to inspect (required).
	id string
	// timeout bounds the single debug fetch.
	timeout time.Duration
}

// inspectRun fetches GET /v1/boxes/{id}/debug from a running daemon
// and renders the whole decision story for one box: the latest plan,
// the research/refit decision and its reason, the forecast scorecard,
// the recent decision events, and the span tree of the last step's
// trace.
func inspectRun(opts inspectOpts) {
	if opts.daemon == "" {
		fmt.Fprintln(os.Stderr, "atmcli: inspect requires -daemon")
		os.Exit(2)
	}
	if opts.id == "" {
		fmt.Fprintln(os.Stderr, "atmcli: inspect requires -id")
		os.Exit(2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), opts.timeout)
	defer cancel()

	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		opts.daemon+"/v1/boxes/"+opts.id+"/debug", nil)
	if err != nil {
		fail(err)
	}
	resp, err := (&http.Client{}).Do(req)
	if err != nil {
		fail(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		fail(fmt.Errorf("daemon returned %d: %s", resp.StatusCode, bytes.TrimSpace(msg)))
	}
	var dbg serve.DebugResponse
	if err := json.NewDecoder(resp.Body).Decode(&dbg); err != nil {
		fail(fmt.Errorf("decode debug for %s: %w", opts.id, err))
	}
	printDebug(os.Stdout, &dbg)
}

// printDebug renders one box's debug snapshot as an operator-facing
// report. Split from inspectRun so tests can feed it a canned payload.
func printDebug(w io.Writer, dbg *serve.DebugResponse) {
	fmt.Fprintf(w, "box %s (shard %d): %d steps\n", dbg.Box, dbg.Shard, dbg.Steps)
	if dbg.LastErr != "" {
		fmt.Fprintf(w, "last error: %s\n", dbg.LastErr)
	}

	if p := dbg.Plan; p != nil {
		fmt.Fprintf(w, "\nplan (step %d, pass %d):\n", p.Step, p.Pass)
		fmt.Fprintf(w, "  tickets %d -> %d, MAPE %.3f, %d VMs, degraded=%v\n",
			p.TicketsBefore, p.TicketsAfter, p.MeanMAPE, len(p.CPUSizes), p.Degraded)
		mode := "refit"
		if dbg.Decision.Research {
			mode = "research"
		}
		fmt.Fprintf(w, "  decision: %s (%s), model age %d\n", mode, dbg.Decision.Reason, dbg.Decision.Age)
		if p.BlendReason != "" {
			fmt.Fprintf(w, "  trust: λ=%.2f (%s)\n", p.Lambda, p.BlendReason)
		}
		if p.TraceID != "" {
			fmt.Fprintf(w, "  trace: %s\n", p.TraceID)
		}
	} else {
		fmt.Fprintln(w, "\nno plan yet (box still filling its first window)")
	}

	if c := dbg.Scorecard; c != nil {
		fmt.Fprintf(w, "\nforecast scorecard:\n")
		fmt.Fprintf(w, "  scored steps %d (degraded %d), MAPE last %.3f rolling %.3f over %d\n",
			c.Steps, c.DegradedSteps, c.LastMAPE, c.RollingMAPE, c.RollingN)
		fmt.Fprintf(w, "  tickets predicted %d realized %d\n", c.TicketsPredicted, c.TicketsRealized)
		fmt.Fprintf(w, "  provision units/window: over %.1f under %.1f (totals %.1f / %.1f)\n",
			c.LastOverUnits, c.LastUnderUnits, c.OverUnits, c.UnderUnits)
	}

	if len(dbg.Events) > 0 {
		fmt.Fprintf(w, "\nrecent events:\n")
		for _, ev := range dbg.Events {
			line := fmt.Sprintf("  %s %-11s step %d shard %d", ev.Time.Format("15:04:05"), ev.Type, ev.Step, ev.Shard)
			if ev.Reason != "" {
				line += " " + ev.Reason
			}
			if ev.Type == "plan" {
				line += fmt.Sprintf(" (tickets %d->%d, Δ%d VMs)", ev.TicketsBefore, ev.TicketsAfter, ev.DeltaVMs)
				if ev.BlendReason != "" {
					line += fmt.Sprintf(" λ=%.2f/%s", ev.Lambda, ev.BlendReason)
				}
			}
			if ev.Err != "" {
				line += " err=" + ev.Err
			}
			fmt.Fprintln(w, line)
		}
	}

	if len(dbg.Spans) > 0 {
		fmt.Fprintf(w, "\nspan tree:\n")
		printSpanTree(w, dbg.Spans)
	}
}

// printSpanTree renders spans as an indented parent→child tree,
// siblings ordered by start time. Spans whose parent is missing from
// the set (recycled out of the ring) print as roots.
func printSpanTree(w io.Writer, spans []obs.SpanData) {
	children := map[string][]obs.SpanData{}
	ids := map[string]bool{}
	for _, s := range spans {
		ids[s.SpanID] = true
	}
	var roots []obs.SpanData
	for _, s := range spans {
		if s.ParentID != "" && ids[s.ParentID] {
			children[s.ParentID] = append(children[s.ParentID], s)
		} else {
			roots = append(roots, s)
		}
	}
	byStart := func(set []obs.SpanData) {
		sort.Slice(set, func(a, b int) bool { return set[a].Start.Before(set[b].Start) })
	}
	byStart(roots)
	var walk func(s obs.SpanData, depth int)
	walk = func(s obs.SpanData, depth int) {
		fmt.Fprintf(w, "  %*s%s %.3fms", 2*depth, "", s.Name, float64(s.DurationNS)/1e6)
		attrs := append(obs.Attrs(nil), s.Attrs...)
		sort.Slice(attrs, func(a, b int) bool { return attrs[a].Key < attrs[b].Key })
		for _, at := range attrs {
			fmt.Fprintf(w, " %s=%v", at.Key, at.Value)
		}
		fmt.Fprintln(w)
		kids := children[s.SpanID]
		byStart(kids)
		for _, c := range kids {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}
