package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"atm/internal/state"
	"atm/internal/trace"
)

// streamOpts parameterizes the stream subcommand.
type streamOpts struct {
	// daemon is the atmd base URL (required).
	daemon string
	// rate is ticks ingested per second; 0 replays at full speed.
	rate float64
	// batch is how many ticks ride in one POST.
	batch int
	// boxes caps how many trace boxes are streamed; 0 streams all.
	boxes int
	// timeout bounds the whole replay.
	timeout time.Duration
}

// streamTick mirrors the daemon's ingest tick shape.
type streamTick struct {
	CPU []float64 `json:"cpu"`
	RAM []float64 `json:"ram"`
}

// streamRequest mirrors the daemon's POST /v1/boxes/{id}/samples body.
type streamRequest struct {
	Box     *state.BoxMeta `json:"box,omitempty"`
	Samples []streamTick   `json:"samples"`
}

// streamRun replays the trace into a running atmd's ingestion API,
// turning any recorded (or generated) trace into a live workload for
// the streaming engine: all boxes advance in lockstep, one sampling
// tick at a time, batched into POSTs of -batch ticks. Each box's
// static metadata rides along on its first POST, so the daemon needs
// no out-of-band registration.
func streamRun(tr *trace.Trace, opts streamOpts) {
	if opts.daemon == "" {
		fmt.Fprintln(os.Stderr, "atmcli: stream requires -daemon")
		os.Exit(2)
	}
	if opts.batch <= 0 {
		opts.batch = 1
	}
	boxes := tr.Boxes
	if opts.boxes > 0 && opts.boxes < len(boxes) {
		boxes = boxes[:opts.boxes]
	}
	if len(boxes) == 0 {
		fail(fmt.Errorf("trace has no boxes"))
	}
	total := tr.Samples()

	ctx, cancel := context.WithTimeout(context.Background(), opts.timeout)
	defer cancel()
	client := &http.Client{}

	var interval time.Duration
	if opts.rate > 0 {
		interval = time.Duration(float64(time.Second) * float64(opts.batch) / opts.rate)
	}

	start := time.Now()
	sent := 0
	for from := 0; from < total; from += opts.batch {
		to := from + opts.batch
		if to > total {
			to = total
		}
		for bi := range boxes {
			b := &boxes[bi]
			req := streamRequest{}
			if from == 0 {
				meta := state.MetaOf(b)
				req.Box = &meta
			}
			for k := from; k < to; k++ {
				tk := streamTick{
					CPU: make([]float64, len(b.VMs)),
					RAM: make([]float64, len(b.VMs)),
				}
				for v := range b.VMs {
					tk.CPU[v] = b.VMs[v].CPU[k]
					tk.RAM[v] = b.VMs[v].RAM[k]
				}
				req.Samples = append(req.Samples, tk)
			}
			if err := postStream(ctx, client, opts.daemon, b.ID, req); err != nil {
				fail(fmt.Errorf("stream %s ticks [%d,%d): %w", b.ID, from, to, err))
			}
		}
		sent = to
		if interval > 0 {
			select {
			case <-ctx.Done():
				fail(fmt.Errorf("stream: %w", ctx.Err()))
			case <-time.After(interval):
			}
		} else if err := ctx.Err(); err != nil {
			fail(fmt.Errorf("stream: %w", err))
		}
	}
	fmt.Printf("streamed %d ticks x %d boxes in %.1fs\n",
		sent, len(boxes), time.Since(start).Seconds())
	for bi := range boxes {
		printPlan(ctx, client, opts.daemon, boxes[bi].ID)
	}
}

// postStream POSTs one ingest batch and checks for a 2xx.
func postStream(ctx context.Context, client *http.Client, daemon, id string, sr streamRequest) error {
	body, err := json.Marshal(sr)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		daemon+"/v1/boxes/"+id+"/samples", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("daemon returned %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	return nil
}

// printPlan fetches and summarizes a box's latest plan (missing plans
// are reported, not fatal — the stream may be shorter than one
// pipeline window).
func printPlan(ctx context.Context, client *http.Client, daemon, id string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		daemon+"/v1/boxes/"+id+"/plan", nil)
	if err != nil {
		fail(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		fail(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Printf("%-12s no plan yet (status %d)\n", id, resp.StatusCode)
		return
	}
	var plan struct {
		Step          int     `json:"step"`
		TicketsBefore int     `json:"tickets_before"`
		TicketsAfter  int     `json:"tickets_after"`
		MeanMAPE      float64 `json:"mean_mape"`
		Research      bool    `json:"research"`
		Degraded      bool    `json:"degraded"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&plan); err != nil {
		fail(fmt.Errorf("decode plan for %s: %w", id, err))
	}
	fmt.Printf("%-12s step %d: tickets %d -> %d, MAPE %.3f, research=%v degraded=%v\n",
		id, plan.Step, plan.TicketsBefore, plan.TicketsAfter, plan.MeanMAPE, plan.Research, plan.Degraded)
}
