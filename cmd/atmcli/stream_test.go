package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"atm/internal/trace"
)

// mockDaemon emulates atmd's streaming API: it validates the ingest
// protocol (meta on first contact, consistent shapes) and serves a
// canned plan.
type mockDaemon struct {
	mu     sync.Mutex
	ticks  map[string]int
	metas  map[string]int
	vmsPer map[string]int
}

func (m *mockDaemon) handler(t *testing.T) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		parts := strings.Split(strings.TrimPrefix(r.URL.Path, "/v1/boxes/"), "/")
		if len(parts) != 2 {
			http.Error(w, "bad route", http.StatusNotFound)
			return
		}
		id, verb := parts[0], parts[1]
		m.mu.Lock()
		defer m.mu.Unlock()
		switch verb {
		case "samples":
			var req streamRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if req.Box != nil {
				m.metas[id]++
				m.vmsPer[id] = len(req.Box.VMs)
			}
			if _, ok := m.vmsPer[id]; !ok {
				http.Error(w, "not registered", http.StatusNotFound)
				return
			}
			for _, tk := range req.Samples {
				if len(tk.CPU) != m.vmsPer[id] || len(tk.RAM) != m.vmsPer[id] {
					http.Error(w, "shape mismatch", http.StatusBadRequest)
					return
				}
				m.ticks[id]++
			}
			_ = json.NewEncoder(w).Encode(map[string]any{"box": id, "total": m.ticks[id]})
		case "plan":
			_ = json.NewEncoder(w).Encode(map[string]any{
				"box": id, "step": 2, "tickets_before": 9, "tickets_after": 3,
				"mean_mape": 0.42, "research": true,
			})
		default:
			http.Error(w, "bad route", http.StatusNotFound)
		}
	})
}

// TestStreamReplay replays a generated trace through streamRun against
// the mock daemon and checks every tick of every box arrived, with
// exactly one metadata announcement per box.
func TestStreamReplay(t *testing.T) {
	md := &mockDaemon{ticks: map[string]int{}, metas: map[string]int{}, vmsPer: map[string]int{}}
	srv := httptest.NewServer(md.handler(t))
	defer srv.Close()

	tr := trace.Generate(trace.GenConfig{
		Boxes: 3, Days: 1, SamplesPerDay: 16, Seed: 5, GapFraction: 1e-9,
	})
	streamRun(tr, streamOpts{
		daemon:  srv.URL,
		batch:   5, // deliberately not a divisor of 16
		boxes:   2,
		timeout: time.Minute,
	})

	md.mu.Lock()
	defer md.mu.Unlock()
	if len(md.ticks) != 2 {
		t.Fatalf("daemon saw %d boxes, want 2 (-boxes cap)", len(md.ticks))
	}
	for _, b := range tr.Boxes[:2] {
		if md.ticks[b.ID] != tr.Samples() {
			t.Errorf("box %s: %d ticks, want %d", b.ID, md.ticks[b.ID], tr.Samples())
		}
		if md.metas[b.ID] != 1 {
			t.Errorf("box %s: meta announced %d times, want 1", b.ID, md.metas[b.ID])
		}
		if md.vmsPer[b.ID] != len(b.VMs) {
			t.Errorf("box %s: meta had %d VMs, want %d", b.ID, md.vmsPer[b.ID], len(b.VMs))
		}
	}
}
